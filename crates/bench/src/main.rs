//! `pioqo-bench` — wall-clock benchmark harness for the simulator hot
//! paths and the observability layer.
//!
//! ```text
//! cargo run -p pioqo-bench --release -- --json [--scale N] [--out PATH] [--trace] [--metrics]
//! ```
//!
//! Measures nine things and emits a JSON report (default `BENCH_pr10.json`
//! in the current directory):
//!
//! 1. **Event queue** — events/sec draining a seeded schedule with
//!    repeated `pop` vs the cohort-draining `pop_batch`.
//! 2. **Buffer pool** — page accesses/sec replaying the same trace on the
//!    dense-table pool vs the reference `BTreeMap` backend.
//! 3. **Tracing** — the same PIS scan with tracing disabled (`NullSink`
//!    never installed — the zero-cost claim) vs enabled (`RingSink`
//!    recording every event).
//! 4. **Concurrency** — wall seconds of the canonical traced 8-session
//!    workload under QDTT-aware admission control (calibration + engine
//!    run + exports), with the engine's simulated makespan alongside so
//!    sim-time-per-wall-second is legible.
//! 5. **Sessions** — the session-scale comparison: 1K closed-loop
//!    sessions of overlapping scans run unshared (one cursor per query)
//!    vs riding the cooperative shared-scan hub, as wall-clock
//!    queries/sec each way plus their ratio (`shared_speedup_1k`, gated
//!    by `scripts/bench_gate.py`), and a shared-only 100K-session point.
//! 6. **Write path** — commits/sec through the crash-consistent write
//!    workload (WAL group commit + background flusher), and the wall cost
//!    of one crash + replay-from-origin recovery cycle.
//! 7. **Metrics** — the same PIS8 scan three ways: no registry installed
//!    (baseline), a *disabled* registry riding the context (the always-on
//!    configuration every run pays; `disabled_overhead_ratio` must stay
//!    ~1.0x and is gated by `scripts/bench_gate.py` at 1.02x), and an
//!    enabled registry sampling on the default cadence
//!    (`enabled_overhead_ratio`, same 1.02x gate). One full
//!    `capture_metrics` pass follows so the report carries the SLO
//!    verdict (`slo_pass`, also gated).
//! 8. **Query layer** — wall-clock throughput of the PR 10 query path:
//!    rows/sec through a filtered scan whose predicate tree (sargable C2
//!    window + residual C1 term) is pushed down into the FTS driver, and
//!    input rows/sec through both join operators (hybrid hash
//!    partition/build/probe, and index-nested-loop probing) on the same
//!    two-table fixture. `scripts/bench_gate.py` gates all three as
//!    ordinary `_per_sec` throughput metrics once a baseline carries them.
//! 9. **End to end** — wall seconds of `repro all --scale N` at 1 and 4
//!    harness threads (the repro binary is built on demand). The 1-vs-4
//!    ratio is recorded as the named leaf `threads_1v4_speedup`, which
//!    `scripts/bench_gate.py` fails on (below 1.0) only when the
//!    recorded `host_logical_cpus` says the host actually had >= 4
//!    cores, and warns otherwise. Every section embeds
//!    `host_logical_cpus` so the artifact stays legible on its own.
//!
//! `--trace` runs only the tracing comparison (quick check of the
//! overhead ratio; the report's other sections are null). `--metrics`
//! runs only the tracing and metrics comparisons. `--profile` turns on
//! the harness self-profiler and prints its phase table on exit.
//!
//! All numbers are wall-clock (this is the one harness crate allowed to
//! look at the real clock; see `lint.toml`).

use pioqo_bufpool::{Access, BufferPool};
use pioqo_device::{presets, CrashPlan, Crashable, MediaStore};
use pioqo_exec::{
    drive_writes, recover, AdmissionPlanner, CpuConfig, CpuCosts, ExecError, QueryAdmission,
    SimContext, WriteConfig, WriteSystem,
};
use pioqo_obs::{MetricsRegistry, RingSink};
use pioqo_optimizer::{OptimizerConfig, QdttAdmission};
use pioqo_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use pioqo_storage::{HeapTable, TableSpec, Tablespace};
use pioqo_workload::{
    calibrate, capture_metrics, default_slos, session_export, session_scale_cell,
    session_scale_fixture, small_metrics_cells, Experiment, ExperimentConfig, MethodSpec,
    SessionScaleConfig,
};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut scale: u64 = 8;
    let mut out_path = PathBuf::from("BENCH_pr10.json");
    let mut json = false;
    let mut trace_only = false;
    let mut metrics_only = false;
    let mut profile = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--trace" => trace_only = true,
            "--metrics" => metrics_only = true,
            "--profile" => profile = true,
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--scale needs a positive integer"));
            }
            "--out" => {
                out_path = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("[bench] host logical CPUs: {cpus}");
    if profile {
        pioqo_profiler::enable();
    }

    let tr = {
        let _span = pioqo_profiler::scope("tracing");
        bench_tracing()
    };
    let sections = if trace_only {
        Sections::default()
    } else if metrics_only {
        Sections {
            metrics: Some(bench_metrics()),
            ..Sections::default()
        }
    } else {
        Sections {
            eq: Some({
                let _span = pioqo_profiler::scope("event_queue");
                bench_event_queue()
            }),
            bp: Some({
                let _span = pioqo_profiler::scope("bufpool");
                bench_bufpool()
            }),
            conc: Some({
                let _span = pioqo_profiler::scope("concurrency");
                bench_concurrency()
            }),
            sessions: Some({
                let _span = pioqo_profiler::scope("sessions");
                bench_sessions()
            }),
            wp: Some({
                let _span = pioqo_profiler::scope("write_path");
                bench_write_path()
            }),
            metrics: Some({
                let _span = pioqo_profiler::scope("metrics");
                bench_metrics()
            }),
            ql: Some({
                let _span = pioqo_profiler::scope("query_layer");
                bench_query_layer()
            }),
            e2e: Some({
                let _span = pioqo_profiler::scope("end_to_end");
                bench_end_to_end(scale)
            }),
        }
    };

    let report = render_json(cpus, scale, &tr, &sections);
    if json {
        println!("{report}");
    }
    match std::fs::write(&out_path, &report) {
        Ok(()) => eprintln!("[bench] wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("[bench] failed to write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    if profile {
        pioqo_profiler::flush_thread();
        eprintln!("{}", pioqo_profiler::report().phase_table());
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: pioqo-bench [--json] [--scale N] [--out PATH] [--trace] [--metrics] [--profile]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// (events, pop events/sec, pop_batch events/sec).
struct EventQueueBench {
    events: u64,
    pop_per_sec: f64,
    pop_batch_per_sec: f64,
}

/// Drain a schedule shaped like a device at queue depth ~32: many events
/// sharing each timestamp (completion cohorts), which is exactly the shape
/// `pop_batch` exists for.
fn bench_event_queue() -> EventQueueBench {
    const COHORTS: u64 = 200_000;
    const PER_COHORT: u64 = 8;
    const EVENTS: u64 = COHORTS * PER_COHORT;

    let fill = |rng: &mut SimRng| {
        let mut q: EventQueue<u64> = EventQueue::new();
        for c in 0..COHORTS {
            let at = SimTime::from_micros(c * 100 + rng.below(50));
            for e in 0..PER_COHORT {
                q.schedule(at, c * PER_COHORT + e);
            }
        }
        q
    };

    // Best of seven per drain style, the two styles interleaved: a
    // sub-50ms loop is at the mercy of one scheduler hiccup on a busy
    // host, and the minimum is the honest estimate of what the code
    // costs. Interleaving spreads the repetitions across ~0.5s of wall
    // time so a single disturbance burst can't blanket one style's
    // every repetition while missing the other's.
    let mut sink = 0u64;
    let mut pop_s = f64::INFINITY;
    let mut pop_batch_s = f64::INFINITY;
    let mut batch: Vec<u64> = Vec::with_capacity(PER_COHORT as usize);
    for _ in 0..7 {
        {
            let mut rng = SimRng::seeded(42);
            let mut q = fill(&mut rng);
            let started = Instant::now();
            while let Some((_, e)) = q.pop() {
                sink = sink.wrapping_add(e);
            }
            pop_s = pop_s.min(started.elapsed().as_secs_f64());
        }
        {
            let mut rng = SimRng::seeded(42);
            let mut q = fill(&mut rng);
            let started = Instant::now();
            while q.peek_time().is_some() {
                batch.clear();
                if q.pop_batch(&mut batch).is_some() {
                    for &e in &batch {
                        sink = sink.wrapping_add(e);
                    }
                }
            }
            pop_batch_s = pop_batch_s.min(started.elapsed().as_secs_f64());
        }
    }
    // Keep `sink` observable so the drains aren't optimized away.
    eprintln!("[bench] event queue: {EVENTS} events, checksum {sink:x}");
    eprintln!(
        "[bench]   pop: {:.0} ev/s, pop_batch: {:.0} ev/s",
        EVENTS as f64 / pop_s,
        EVENTS as f64 / pop_batch_s
    );
    EventQueueBench {
        events: EVENTS,
        pop_per_sec: EVENTS as f64 / pop_s,
        pop_batch_per_sec: EVENTS as f64 / pop_batch_s,
    }
}

/// (accesses, dense accesses/sec, reference accesses/sec).
struct BufpoolBench {
    accesses: u64,
    dense_per_sec: f64,
    reference_per_sec: f64,
}

/// Replay an identical seeded request/admit/unpin trace against the dense
/// page table and the reference `BTreeMap` backend — the A/B behind the
/// PR's page-table claim. Working set ~4x the pool so the trace exercises
/// hits, misses and evictions.
fn bench_bufpool() -> BufpoolBench {
    const CAP: usize = 16_384;
    const PAGES: u64 = 65_536;
    const OPS: u64 = 4_000_000;

    let run = |mut pool: BufferPool| -> f64 {
        let mut rng = SimRng::seeded(7);
        let started = Instant::now();
        for _ in 0..OPS {
            let page = rng.below(PAGES);
            if pool.request(page) == Access::Miss {
                pool.admit(page)
                    .expect("bench trace never exhausts the pool");
            }
            pool.unpin(page).expect("bench page was just pinned");
        }
        let secs = started.elapsed().as_secs_f64();
        pool.check_invariants();
        secs
    };

    // Best of five: the loop is short enough that a single scheduler
    // hiccup on a busy host shows up as a 20-30% swing; the minimum is
    // the honest estimate of what the code costs.
    let best = |make: &dyn Fn() -> BufferPool| -> f64 {
        (0..5).map(|_| run(make())).fold(f64::INFINITY, f64::min)
    };
    let dense_s = best(&|| BufferPool::new(CAP));
    let reference_s = best(&|| BufferPool::new_reference(CAP));
    eprintln!(
        "[bench] bufpool: {OPS} accesses; dense {:.0}/s, reference {:.0}/s ({:.2}x)",
        OPS as f64 / dense_s,
        OPS as f64 / reference_s,
        reference_s / dense_s
    );
    BufpoolBench {
        accesses: OPS,
        dense_per_sec: OPS as f64 / dense_s,
        reference_per_sec: OPS as f64 / reference_s,
    }
}

/// Disabled-vs-enabled tracing timings for the same scan.
struct TracingBench {
    runs: u64,
    disabled_s: f64,
    enabled_s: f64,
    overhead_ratio: f64,
    events_per_run: u64,
}

/// Run the default-scenario PIS8 scan `RUNS` times untraced (`run_with`,
/// which never installs a sink — the zero-cost configuration) and `RUNS`
/// times with a `RingSink` capturing every event, and compare wall time.
fn bench_tracing() -> TracingBench {
    const RUNS: u64 = 24;
    let cfg = ExperimentConfig::by_name("E33-SSD")
        .expect("E33-SSD is a Table 1 row")
        .scaled_down(64);
    let exp = Experiment::build(cfg);
    let method = MethodSpec::Is {
        workers: 8,
        prefetch: 0,
    };

    // One untimed warm-up so first-touch costs (page faults, lazy init)
    // don't land in whichever loop happens to run first.
    let mut checksum = 0u64;
    {
        let mut dev = exp.make_device();
        let mut pool = exp.make_pool();
        let m = exp
            .run_with(dev.as_mut(), &mut pool, method, 0.01)
            .expect("clean device cannot fail");
        checksum ^= m.io.io_ops;
    }

    // The two configurations interleave at single-run granularity with
    // the starting mode alternated per cycle, and the reported seconds
    // are per-mode medians scaled to the block size — the same estimator
    // the metrics section uses (and for the same reason: block-at-a-time
    // best-of timing flakes the gate whenever one mode's blocks alias
    // against periodic host activity).
    let mut events_per_run = 0u64;
    let mut times: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    {
        let mut time_run = |traced: bool| -> f64 {
            let mut dev = exp.make_device();
            let mut pool = exp.make_pool();
            let mut sink = RingSink::with_capacity(1 << 16);
            let started = Instant::now();
            let m = if traced {
                exp.run_with_traced(dev.as_mut(), &mut pool, method, 0.01, &mut sink)
            } else {
                exp.run_with(dev.as_mut(), &mut pool, method, 0.01)
            }
            .expect("clean device cannot fail");
            let t = started.elapsed().as_secs_f64();
            checksum ^= m.io.io_ops;
            if traced {
                events_per_run = sink.recorded();
            }
            t
        };
        for cycle in 0..(5 * RUNS) {
            for slot in 0..2u64 {
                let traced = (cycle + slot) % 2 == 1;
                times[traced as usize].push(time_run(traced));
            }
        }
    }
    let median = |v: &[f64]| -> f64 {
        let mut v = v.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let best = |v: &[f64]| -> f64 { v.iter().copied().fold(f64::INFINITY, f64::min) };
    // Absolute seconds stay best-of (comparable across reports); the
    // gated overhead ratio comes from the medians.
    let disabled_s = best(&times[0]) * RUNS as f64;
    let enabled_s = best(&times[1]) * RUNS as f64;
    let overhead_ratio = median(&times[1]) / median(&times[0]);

    eprintln!(
        "[bench] tracing: {RUNS} PIS8 scans (checksum {checksum:x}); \
         disabled {disabled_s:.3}s, enabled {enabled_s:.3}s ({overhead_ratio:.2}x), \
         {events_per_run} events/run"
    );
    TracingBench {
        runs: RUNS,
        disabled_s,
        enabled_s,
        overhead_ratio,
        events_per_run,
    }
}

/// Wall time of the canonical traced 8-session workload, with the
/// engine's own simulated makespan for scale.
struct ConcurrencyBench {
    runs: u64,
    sessions: u32,
    queries: u64,
    wall_s_per_run: f64,
    sim_makespan_ms: f64,
    admissions: u64,
    admissions_per_sec: f64,
}

/// Run `session_export` (calibrate the SSD fixture, execute 8 closed-loop
/// sessions through QDTT-aware admission control with per-session trace
/// tracks, render the JSON exports) end to end and time it. One untimed
/// warm-up run absorbs first-touch costs, same as the tracing bench.
fn bench_concurrency() -> ConcurrencyBench {
    const RUNS: u64 = 9;
    let warm = session_export(42).expect("canonical session export cannot fail");
    let sessions = warm.report.spec.sessions;
    let queries = warm.report.total_completed() as u64;
    let sim_makespan_ms = warm.report.makespan.as_micros_f64() / 1_000.0;
    let admissions = warm.admissions.len() as u64;

    // Median of nine ~60ms runs: a mean of three flaked the bench gate
    // whenever one run caught a scheduler hiccup on a busy host.
    let mut checksum = 0usize;
    let mut times = Vec::with_capacity(RUNS as usize);
    for _ in 0..RUNS {
        let started = Instant::now();
        let export = session_export(42).expect("canonical session export cannot fail");
        times.push(started.elapsed().as_secs_f64());
        checksum ^= export.chrome_json.len();
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let wall_s_per_run = times[times.len() / 2];
    let admissions_per_sec = bench_admission_rate();
    eprintln!(
        "[bench] concurrency: {RUNS} runs of {sessions} sessions / {queries} queries \
         (checksum {checksum:x}); {wall_s_per_run:.3}s/run, sim makespan {sim_makespan_ms:.1}ms, \
         {admissions_per_sec:.0} admissions/s"
    );
    ConcurrencyBench {
        runs: RUNS,
        sessions,
        queries,
        wall_s_per_run,
        sim_makespan_ms,
        admissions,
        admissions_per_sec,
    }
}

/// Wall-clock rate of the QDTT admission hot path alone: acquire a lease,
/// gather stats, re-cost every candidate under the lease, lower and
/// journal, release. This is the loop the planner's reused scratch
/// buffers (candidate vector + working config) exist for — the before/
/// after A/B for the no-per-query-allocations claim.
fn bench_admission_rate() -> f64 {
    const ADMITS: u64 = 50_000;
    let cfg = ExperimentConfig::by_name("E33-SSD")
        .expect("E33-SSD is a Table 1 row")
        .scaled_down(64);
    let exp = Experiment::build(cfg);
    let model = calibrate(&exp).qdtt;
    let pool = exp.make_pool();
    let mut best = f64::INFINITY;
    let mut decisions = 0usize;
    for _ in 0..3 {
        let mut adm = QdttAdmission::new(
            exp.dataset.table(),
            exp.dataset.index(),
            model.clone(),
            OptimizerConfig::fine_grained(),
        );
        let started = Instant::now();
        for i in 0..ADMITS {
            let q = QueryAdmission {
                session: (i % 64) as u32,
                query_index: (i / 64) as u32,
                active: (i % 8) as u32,
                selectivity: 0.001 + (i % 10) as f64 * 0.05,
                low: 0,
                high: 0,
            };
            let _ = adm.admit(&q, &pool);
            adm.complete((i % 64) as u32);
        }
        best = best.min(started.elapsed().as_secs_f64());
        decisions = adm.decisions().len();
    }
    assert_eq!(decisions as u64, ADMITS, "every admission must journal");
    ADMITS as f64 / best
}

/// The session-scale wall-clock comparison: shared vs unshared cursors at
/// 1K sessions, plus a shared-only 100K-session point.
struct SessionsBench {
    sessions_1k: u32,
    unshared_wall_s: f64,
    shared_wall_s: f64,
    unshared_queries_per_wall_s: f64,
    shared_queries_per_wall_s: f64,
    shared_speedup_1k: f64,
    attach_rate_1k: f64,
    sessions_100k: u32,
    sessions_100k_wall_s: f64,
    sessions_100k_queries_per_wall_s: f64,
}

/// Run single session-scale cells under a wall-clock timer (the workload
/// crate itself never looks at the real clock). The 1K-session pair is
/// the tentpole's headline: identical spec and answers, one run
/// broadcasting device events to up to 1K solo scan drivers, the other
/// riding one shared circular cursor.
fn bench_sessions() -> SessionsBench {
    let cfg = SessionScaleConfig::default();
    let (exp, model) = session_scale_fixture(&cfg);
    let time_cell = |sessions: u32, shared: bool| {
        eprintln!(
            "[bench] sessions: {sessions} sessions, shared {} ...",
            if shared { "on" } else { "off" }
        );
        let started = Instant::now();
        let cell = session_scale_cell(&exp, &model, &cfg, sessions, shared)
            .expect("session-scale cell cannot fail");
        (started.elapsed().as_secs_f64(), cell)
    };
    let (unshared_wall_s, unshared) = time_cell(1_000, false);
    let (shared_wall_s, shared) = time_cell(1_000, true);
    let (wall_100k, cell_100k) = time_cell(100_000, true);
    let unshared_qps = unshared.completed as f64 / unshared_wall_s;
    let shared_qps = shared.completed as f64 / shared_wall_s;
    eprintln!(
        "[bench] sessions: 1K unshared {:.0} q/s, shared {:.0} q/s ({:.1}x, attach rate {:.2}); \
         100K shared {:.1}s ({:.0} q/s)",
        unshared_qps,
        shared_qps,
        shared_qps / unshared_qps,
        shared.attach_rate,
        wall_100k,
        cell_100k.completed as f64 / wall_100k,
    );
    SessionsBench {
        sessions_1k: 1_000,
        unshared_wall_s,
        shared_wall_s,
        unshared_queries_per_wall_s: unshared_qps,
        shared_queries_per_wall_s: shared_qps,
        shared_speedup_1k: shared_qps / unshared_qps,
        attach_rate_1k: shared.attach_rate,
        sessions_100k: 100_000,
        sessions_100k_wall_s: wall_100k,
        sessions_100k_queries_per_wall_s: cell_100k.completed as f64 / wall_100k,
    }
}

/// Commit throughput of the crash-consistent write workload and the wall
/// cost of a crash + replay-from-origin recovery cycle.
struct WritePathBench {
    commits: u64,
    wal_records: u64,
    commits_per_sec: f64,
    recover_wall_s: f64,
    pages_verified: u64,
}

/// Drive the WAL-backed write workload (group commit + background
/// flusher) to completion on a simulated SSD and time it wall-clock, then
/// crash the identical workload halfway through, corrupt-and-replay, and
/// time `recover` alone. Best-of-three per side, same rationale as the
/// other short loops.
fn bench_write_path() -> WritePathBench {
    let seed = 7u64;
    let spec = TableSpec::paper_table(33, 20_000, seed);
    let mut ts = Tablespace::new(spec.n_pages() + 4_200);
    let table = HeapTable::create(spec, &mut ts).expect("bench table fits");
    let wal_extent = ts.alloc("wal", 4_096).expect("bench WAL fits");
    let capacity = ts.capacity();
    let cfg = WriteConfig {
        writers: 8,
        commits_per_writer: 64,
        think: SimDuration::from_micros_f64(300.0),
        group_commit: SimDuration::from_micros_f64(150.0),
        flush_interval: SimDuration::from_micros_f64(500.0),
        flush_batch: 8,
        seed,
        ..WriteConfig::default()
    };
    let base_media = || {
        let mut m = MediaStore::new(table.spec().page_size);
        for local in 0..table.n_pages() {
            m.write(table.device_page(local), &table.page_image(local));
        }
        m
    };

    // Crash-free side: commits acked per wall second.
    let mut commits = 0u64;
    let mut wal_records = 0u64;
    let mut end = SimDuration::ZERO;
    let mut clean_s = f64::INFINITY;
    for _ in 0..3 {
        let mut dev = presets::consumer_pcie_ssd(capacity, seed ^ 0xD);
        let mut pool = BufferPool::new(1024);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let mut ws = WriteSystem::new(cfg.clone(), &table, wal_extent, base_media());
        let started = Instant::now();
        drive_writes(&mut ctx, &mut ws).expect("clean device cannot fail");
        clean_s = clean_s.min(started.elapsed().as_secs_f64());
        let stats = ws.stats();
        commits = stats.commits_acked;
        wal_records = stats.wal_records;
        end = ctx.now().since(SimTime::ZERO);
    }

    // Crash side: same workload torn mid-flight, then recovery alone.
    let mut recover_wall_s = f64::INFINITY;
    let mut pages_verified = 0u64;
    for _ in 0..3 {
        let at = SimTime::ZERO + end * 0.5;
        let inner = presets::consumer_pcie_ssd(capacity, seed ^ 0xD);
        let mut dev = Crashable::new(inner, CrashPlan::at(at, seed ^ 0xC1));
        let mut pool = BufferPool::new(1024);
        let mut ws = {
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            let mut ws = WriteSystem::new(cfg.clone(), &table, wal_extent, base_media());
            let r = drive_writes(&mut ctx, &mut ws);
            assert!(
                matches!(r, Err(ExecError::Crashed)),
                "mid-workload crash must surface as Crashed, got {r:?}"
            );
            ws
        };
        let report = dev.crash_report().expect("crashed device has a report");
        ws.apply_crash(report, seed ^ 0xC1);
        let mut media = ws.into_media();
        let started = Instant::now();
        let rec = recover(&mut media, wal_extent, table.spec(), table.extent());
        recover_wall_s = recover_wall_s.min(started.elapsed().as_secs_f64());
        assert!(rec.fully_recovered(), "bench crash must recover: {rec:?}");
        pages_verified = rec.pages_verified;
    }

    eprintln!(
        "[bench] write path: {commits} commits / {wal_records} WAL records, \
         {:.0} commits/s; recovery {recover_wall_s:.4}s ({pages_verified} pages verified)",
        commits as f64 / clean_s
    );
    WritePathBench {
        commits,
        wal_records,
        commits_per_sec: commits as f64 / clean_s,
        recover_wall_s,
        pages_verified,
    }
}

/// Baseline / disabled-registry / enabled-registry timings for the same
/// scan, plus the SLO verdict of a full capture.
struct MetricsBench {
    runs: u64,
    baseline_s: f64,
    disabled_s: f64,
    enabled_s: f64,
    disabled_ratio: f64,
    enabled_ratio: f64,
    slo_checks: u64,
    slo_pass: bool,
}

/// Time the default-scenario PIS8 scan three ways: `run_with` (no
/// registry anywhere near the context — the pre-metrics baseline),
/// `run_with_metrics` over a **disabled** registry (what every ordinary
/// run now pays for the always-on plumbing; the 1.02x gate lives on this
/// ratio), and over an **enabled** registry sampling at the default 1ms
/// sim cadence. Then run one full `capture_metrics` pass over the small
/// cells so the committed report records whether the SLO roster holds.
fn bench_metrics() -> MetricsBench {
    // 8x the tracing bench's dataset (one scan ~5ms), 360 timed scans per
    // mode: the gated ratios live at 1.02x, so the estimator has to beat
    // scheduler noise on a busy 1-CPU host by an order of magnitude.
    const RUNS: u64 = 360;
    let cfg = ExperimentConfig::by_name("E33-SSD")
        .expect("E33-SSD is a Table 1 row")
        .scaled_down(8);
    let exp = Experiment::build(cfg);
    let method = MethodSpec::Is {
        workers: 8,
        prefetch: 0,
    };

    // Untimed warm-up, same rationale as the tracing bench.
    let mut checksum = 0u64;
    {
        let mut dev = exp.make_device();
        let mut pool = exp.make_pool();
        let m = exp
            .run_with(dev.as_mut(), &mut pool, method, 0.01)
            .expect("clean device cannot fail");
        checksum ^= m.io.io_ops;
    }

    let mut time_run = |mode: u8| -> f64 {
        let mut dev = exp.make_device();
        let mut pool = exp.make_pool();
        let started = Instant::now();
        let m = match mode {
            0 => exp.run_with(dev.as_mut(), &mut pool, method, 0.01),
            1 => {
                let mut reg = MetricsRegistry::disabled();
                exp.run_with_metrics(dev.as_mut(), &mut pool, method, 0.01, &mut reg)
            }
            _ => {
                let mut reg = MetricsRegistry::enabled(SimDuration::from_millis(1));
                exp.run_with_metrics(dev.as_mut(), &mut pool, method, 0.01, &mut reg)
            }
        }
        .expect("clean device cannot fail");
        let t = started.elapsed().as_secs_f64();
        checksum ^= m.io.io_ops;
        t
    };
    // The three modes interleave at single-run (~5ms) granularity with the
    // starting mode rotated every cycle. Coarser block-at-a-time timing
    // kept flaking the 1.02x gate two different ways: a fixed 0,1,2 block
    // order hands mode 0 the coolest slot every time (a systematic ~2%
    // phantom "overhead" on the later modes, though the disabled path is
    // instruction-identical to the baseline), and even rotated blocks can
    // alias against periodic host activity so one mode soaks a
    // disturbance the others miss. At per-run granularity anything longer
    // than a few milliseconds lands on all three modes evenly, and the
    // per-mode *median* of 360 runs estimates the typical cost with the
    // outliers discarded symmetrically. Absolute seconds are still
    // best-of (the cleanest run each mode achieved).
    let mut runs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for cycle in 0..RUNS {
        for slot in 0..3u64 {
            let mode = ((cycle + slot) % 3) as u8;
            runs[mode as usize].push(time_run(mode));
        }
    }
    let median = |v: &[f64]| -> f64 {
        let mut v = v.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let best = |v: &[f64]| -> f64 { v.iter().copied().fold(f64::INFINITY, f64::min) };
    let [baseline_s, disabled_s, enabled_s] = [best(&runs[0]), best(&runs[1]), best(&runs[2])];
    let disabled_ratio = median(&runs[1]) / median(&runs[0]);
    let enabled_ratio = median(&runs[2]) / median(&runs[1]);

    let cells = small_metrics_cells(7);
    let slos = default_slos();
    let bundle = capture_metrics(&cells, SimDuration::from_millis(1), &slos, 2)
        .expect("metrics capture over Table 1 rows cannot fail");
    eprintln!(
        "[bench] metrics: {RUNS} PIS8 scans (checksum {checksum:x}); \
         baseline {baseline_s:.3}s, disabled {disabled_s:.3}s ({disabled_ratio:.3}x), \
         enabled {enabled_s:.3}s ({enabled_ratio:.3}x); {} SLOs, pass={}",
        bundle.verdicts.len(),
        bundle.slo_pass(),
    );
    MetricsBench {
        runs: RUNS,
        baseline_s,
        disabled_s,
        enabled_s,
        disabled_ratio,
        enabled_ratio,
        slo_checks: bundle.verdicts.len() as u64,
        slo_pass: bundle.slo_pass(),
    }
}

/// Throughput of the query layer's three hot paths.
struct QueryLayerBench {
    table_rows: u64,
    filtered_scan_rows_per_sec: f64,
    join_left_rows: u64,
    join_right_rows: u64,
    hash_join_rows_per_sec: f64,
    inl_join_rows_per_sec: f64,
}

/// Time the PR 10 query path wall-clock: a filtered FTS scan (sargable C2
/// window AND a residual C1 term, both evaluated inside the driver's page
/// visits) over a 200K-row table, and both join operators consuming a
/// 20K-row outer against a 40K-row inner. Throughput is input rows per
/// wall second, best-of-three per shape.
fn bench_query_layer() -> QueryLayerBench {
    use pioqo_exec::{
        execute, FtsConfig, HashJoinConfig, InlConfig, JoinClause, PlanSpec, Predicate, QuerySpec,
    };
    use pioqo_storage::BTreeIndex;

    const TABLE_ROWS: u64 = 200_000;
    const LEFT_ROWS: u64 = 20_000;
    const RIGHT_ROWS: u64 = 40_000;
    const KEY_MAX: u32 = 9_999;

    // Scan fixture.
    let scan_spec = TableSpec::paper_table(33, TABLE_ROWS, 7);
    let mut scan_ts = Tablespace::new(2 * scan_spec.n_pages() + 1_000);
    let scan_table = HeapTable::create(scan_spec, &mut scan_ts).expect("bench table fits");
    let scan_capacity = scan_ts.capacity();
    let scan_pred = Predicate::And(vec![
        Predicate::c2_between(0, u32::MAX / 5),
        Predicate::Cmp {
            col: pioqo_exec::Col::C1,
            op: pioqo_exec::CmpOp::Ge,
            value: 1 << 20,
        },
    ]);

    // Join fixture (mirrors `workload::joins`).
    let lspec = TableSpec {
        c2_max: KEY_MAX,
        ..TableSpec::paper_table(33, LEFT_ROWS, 0x10)
    };
    let rspec = TableSpec {
        name: "T_inner".to_string(),
        c2_max: KEY_MAX,
        ..TableSpec::paper_table(33, RIGHT_ROWS, 0x20)
    };
    let mut join_ts = Tablespace::new(4 * (lspec.n_pages() + rspec.n_pages()) + 4_000);
    let left = HeapTable::create(lspec, &mut join_ts).expect("bench outer fits");
    let right = HeapTable::create(rspec, &mut join_ts).expect("bench inner fits");
    let right_index = BTreeIndex::build(
        "inner_c2",
        right.data().c2_entries(),
        right.spec().page_size,
        &mut join_ts,
    )
    .expect("bench index fits");
    let spill = join_ts
        .alloc("join_spill", 2 * (left.n_pages() + right.n_pages()) + 64)
        .expect("bench spill fits");
    let join_capacity = join_ts.capacity();

    let time_best = |q: &QuerySpec<'_>, capacity: u64| -> f64 {
        let mut best = f64::INFINITY;
        let mut checksum = 0u64;
        for _ in 0..3 {
            let mut dev = presets::consumer_pcie_ssd(capacity, 17);
            let mut pool = BufferPool::new(4_096);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            let started = Instant::now();
            let m = execute(&mut ctx, q).expect("clean device cannot fail");
            best = best.min(started.elapsed().as_secs_f64());
            checksum ^= m.fingerprint;
        }
        std::hint::black_box(checksum);
        best
    };

    let scan_q = QuerySpec::scan(&scan_table)
        .filter(scan_pred)
        .with_plan(PlanSpec::Fts(FtsConfig {
            workers: 8,
            ..FtsConfig::default()
        }));
    let scan_s = time_best(&scan_q, scan_capacity);

    let join_q = |plan: PlanSpec| {
        QuerySpec::scan(&left)
            .filter(Predicate::c2_between(0, KEY_MAX / 4))
            .with_plan(plan)
            .join(JoinClause {
                right: &right,
                right_index: Some(&right_index),
                spill: Some(spill),
            })
    };
    let hash_s = time_best(
        &join_q(PlanSpec::Hash(HashJoinConfig::default())),
        join_capacity,
    );
    let inl_s = time_best(&join_q(PlanSpec::Inl(InlConfig::default())), join_capacity);

    let join_rows = (LEFT_ROWS + RIGHT_ROWS) as f64;
    eprintln!(
        "[bench] query layer: filtered scan {:.0} rows/s; hash join {:.0} rows/s, \
         INL {:.0} rows/s",
        TABLE_ROWS as f64 / scan_s,
        join_rows / hash_s,
        join_rows / inl_s,
    );
    QueryLayerBench {
        table_rows: TABLE_ROWS,
        filtered_scan_rows_per_sec: TABLE_ROWS as f64 / scan_s,
        join_left_rows: LEFT_ROWS,
        join_right_rows: RIGHT_ROWS,
        hash_join_rows_per_sec: join_rows / hash_s,
        inl_join_rows_per_sec: join_rows / inl_s,
    }
}

/// Wall seconds of `repro all --scale N` at the given thread count, or
/// `None` when the run failed.
struct EndToEndBench {
    threads_1_s: Option<f64>,
    threads_4_s: Option<f64>,
}

/// Locate the release `repro` binary next to our own executable, building
/// it via cargo if it isn't there yet.
fn find_repro() -> Option<PathBuf> {
    let sibling = std::env::current_exe()
        .ok()?
        .parent()?
        .join(format!("repro{}", std::env::consts::EXE_SUFFIX));
    if !sibling.exists() {
        eprintln!("[bench] building repro (release) ...");
        let status = std::process::Command::new("cargo")
            .args(["build", "--release", "-p", "pioqo-repro"])
            .status()
            .ok()?;
        if !status.success() {
            return None;
        }
    }
    sibling.exists().then_some(sibling)
}

fn bench_end_to_end(scale: u64) -> EndToEndBench {
    let Some(repro) = find_repro() else {
        eprintln!("[bench] repro binary unavailable; skipping end-to-end runs");
        return EndToEndBench {
            threads_1_s: None,
            threads_4_s: None,
        };
    };
    let results = std::env::temp_dir().join(format!("pioqo-bench-{}", std::process::id()));
    let run = |threads: &str| -> Option<f64> {
        eprintln!("[bench] repro all --scale {scale} --threads {threads} ...");
        let started = Instant::now();
        let out = std::process::Command::new(&repro)
            .args(["all", "--scale", &scale.to_string(), "--threads", threads])
            .env("PIOQO_RESULTS", &results)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .ok()?;
        out.success().then(|| started.elapsed().as_secs_f64())
    };
    let t1 = run("1");
    let t4 = run("4");
    let _ = std::fs::remove_dir_all(&results);
    if let (Some(a), Some(b)) = (t1, t4) {
        eprintln!(
            "[bench] end-to-end: 1 thread {a:.1}s, 4 threads {b:.1}s ({:.2}x)",
            a / b
        );
    }
    EndToEndBench {
        threads_1_s: t1,
        threads_4_s: t4,
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_num)
}

/// The measurement sections skipped under `--trace`.
#[derive(Default)]
struct Sections {
    eq: Option<EventQueueBench>,
    bp: Option<BufpoolBench>,
    conc: Option<ConcurrencyBench>,
    sessions: Option<SessionsBench>,
    wp: Option<WritePathBench>,
    metrics: Option<MetricsBench>,
    ql: Option<QueryLayerBench>,
    e2e: Option<EndToEndBench>,
}

fn render_json(cpus: usize, scale: u64, tr: &TracingBench, sections: &Sections) -> String {
    let Sections {
        eq,
        bp,
        conc,
        sessions,
        wp,
        metrics,
        ql,
        e2e,
    } = sections;
    let eq_json = match eq {
        Some(eq) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"events\": {},\n    \"pop_events_per_sec\": {},\n    \"pop_batch_events_per_sec\": {},\n    \"speedup\": {}\n  }}",
            eq.events,
            json_num(eq.pop_per_sec),
            json_num(eq.pop_batch_per_sec),
            json_num(eq.pop_batch_per_sec / eq.pop_per_sec),
        ),
        None => "null".to_string(),
    };
    let bp_json = match bp {
        Some(bp) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"accesses\": {},\n    \"dense_accesses_per_sec\": {},\n    \"reference_btree_accesses_per_sec\": {},\n    \"speedup\": {}\n  }}",
            bp.accesses,
            json_num(bp.dense_per_sec),
            json_num(bp.reference_per_sec),
            json_num(bp.dense_per_sec / bp.reference_per_sec),
        ),
        None => "null".to_string(),
    };
    let tr_json = format!(
        "{{\n    \"host_logical_cpus\": {cpus},\n    \"runs\": {},\n    \"disabled_wall_s\": {},\n    \"enabled_wall_s\": {},\n    \"overhead_ratio\": {},\n    \"events_per_run\": {}\n  }}",
        tr.runs,
        json_num(tr.disabled_s),
        json_num(tr.enabled_s),
        json_num(tr.overhead_ratio),
        tr.events_per_run,
    );
    let conc_json = match conc {
        Some(c) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"runs\": {},\n    \"sessions\": {},\n    \"queries\": {},\n    \"wall_s_per_run\": {},\n    \"sim_makespan_ms\": {},\n    \"queries_per_wall_s\": {},\n    \"admissions\": {},\n    \"admissions_per_sec\": {}\n  }}",
            c.runs,
            c.sessions,
            c.queries,
            json_num(c.wall_s_per_run),
            json_num(c.sim_makespan_ms),
            json_num(c.queries as f64 / c.wall_s_per_run),
            c.admissions,
            json_num(c.admissions_per_sec),
        ),
        None => "null".to_string(),
    };
    let sessions_json = match sessions {
        Some(s) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"sessions_1k\": {},\n    \"unshared_wall_s\": {},\n    \"shared_wall_s\": {},\n    \"unshared_queries_per_wall_s\": {},\n    \"shared_queries_per_wall_s\": {},\n    \"shared_speedup_1k\": {},\n    \"attach_rate_1k\": {},\n    \"sessions_100k\": {},\n    \"sessions_100k_wall_s\": {},\n    \"sessions_100k_queries_per_wall_s\": {}\n  }}",
            s.sessions_1k,
            json_num(s.unshared_wall_s),
            json_num(s.shared_wall_s),
            json_num(s.unshared_queries_per_wall_s),
            json_num(s.shared_queries_per_wall_s),
            json_num(s.shared_speedup_1k),
            json_num(s.attach_rate_1k),
            s.sessions_100k,
            json_num(s.sessions_100k_wall_s),
            json_num(s.sessions_100k_queries_per_wall_s),
        ),
        None => "null".to_string(),
    };
    let wp_json = match wp {
        Some(w) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"commits\": {},\n    \"wal_records\": {},\n    \"commits_per_sec\": {},\n    \"recover_wall_s\": {},\n    \"pages_verified\": {}\n  }}",
            w.commits,
            w.wal_records,
            json_num(w.commits_per_sec),
            json_num(w.recover_wall_s),
            w.pages_verified,
        ),
        None => "null".to_string(),
    };
    let metrics_json = match metrics {
        Some(m) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"runs\": {},\n    \"baseline_wall_s\": {},\n    \"disabled_wall_s\": {},\n    \"enabled_wall_s\": {},\n    \"disabled_overhead_ratio\": {},\n    \"enabled_overhead_ratio\": {},\n    \"slo_checks\": {},\n    \"slo_pass\": {}\n  }}",
            m.runs,
            json_num(m.baseline_s),
            json_num(m.disabled_s),
            json_num(m.enabled_s),
            json_num(m.disabled_ratio),
            json_num(m.enabled_ratio),
            m.slo_checks,
            m.slo_pass,
        ),
        None => "null".to_string(),
    };
    let ql_json = match ql {
        Some(q) => format!(
            "{{\n    \"host_logical_cpus\": {cpus},\n    \"table_rows\": {},\n    \"filtered_scan_rows_per_sec\": {},\n    \"join_left_rows\": {},\n    \"join_right_rows\": {},\n    \"hash_join_rows_per_sec\": {},\n    \"inl_join_rows_per_sec\": {}\n  }}",
            q.table_rows,
            json_num(q.filtered_scan_rows_per_sec),
            q.join_left_rows,
            q.join_right_rows,
            json_num(q.hash_join_rows_per_sec),
            json_num(q.inl_join_rows_per_sec),
        ),
        None => "null".to_string(),
    };
    let e2e_json = match e2e {
        Some(e2e) => {
            let speedup = match (e2e.threads_1_s, e2e.threads_4_s) {
                (Some(a), Some(b)) if b > 0.0 => json_num(a / b),
                _ => "null".to_string(),
            };
            format!(
                "{{\n    \"host_logical_cpus\": {cpus},\n    \"target\": \"all\",\n    \"scale\": {scale},\n    \"threads_1_wall_s\": {},\n    \"threads_4_wall_s\": {},\n    \"threads_1v4_speedup\": {}\n  }}",
                json_opt(e2e.threads_1_s),
                json_opt(e2e.threads_4_s),
                speedup,
            )
        }
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"bench\": \"pr10\",\n  \"host_logical_cpus\": {cpus},\n  \"event_queue\": {eq_json},\n  \"bufpool\": {bp_json},\n  \"tracing\": {tr_json},\n  \"concurrency\": {conc_json},\n  \"sessions\": {sessions_json},\n  \"write_path\": {wp_json},\n  \"metrics\": {metrics_json},\n  \"query_layer\": {ql_json},\n  \"end_to_end\": {e2e_json}\n}}\n"
    )
}
