//! # pioqo-bench — shared fixtures for the Criterion benchmarks
//!
//! The figure/table *reproduction* harness lives in `pioqo-repro` (virtual
//! time); the benches here measure the *wall-clock* performance of the
//! library itself: how fast the simulators simulate, how fast the B+-tree
//! probes, how cheap a QDTT lookup is, and how long the optimizer takes to
//! plan — the last one matters because a cost model that slows planning
//! down would never ship in an embedded DBMS.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pioqo_storage::{BTreeIndex, HeapTable, TableSpec, Tablespace};

/// A small standard dataset shared by the scan/optimizer benches.
pub struct BenchData {
    /// The heap table.
    pub table: HeapTable,
    /// Its C2 index.
    pub index: BTreeIndex,
    /// Device capacity the layout fits in.
    pub capacity: u64,
}

/// Build the standard bench dataset (`rows` rows, 33 rows/page).
pub fn bench_data(rows: u64) -> BenchData {
    let spec = TableSpec::paper_table(33, rows, 99);
    let mut ts = Tablespace::new(4 * spec.n_pages() + 2000);
    let table = HeapTable::create(spec, &mut ts).expect("bench table spec fits the tablespace");
    let index = BTreeIndex::build("c2", table.data().c2_entries(), 4096, &mut ts)
        .expect("bench index build fits the tablespace");
    BenchData {
        table,
        index,
        capacity: ts.capacity(),
    }
}
