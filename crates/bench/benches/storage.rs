//! Storage-layer benchmarks: page codec, data generation, B+-tree bulk
//! load and range probes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pioqo_bench::bench_data;
use pioqo_storage::{encode_heap_page, range_for_selectivity, ColumnData, TableSpec};
use std::hint::black_box;

fn bench_page_codec(c: &mut Criterion) {
    let spec = TableSpec::paper_table(33, 1_000_000, 7);
    let rows: Vec<(u32, u32)> = (0..33).map(|i| (i * 31, i * 17)).collect();
    let img = encode_heap_page(&spec, 5, &rows);
    let mut g = c.benchmark_group("page_codec");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("encode", |b| {
        b.iter(|| black_box(encode_heap_page(&spec, 5, black_box(&rows))))
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(pioqo_storage::decode_heap_page(&spec, black_box(&img))))
    });
    g.finish();
}

fn bench_data_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("data_generation");
    let rows = 100_000u64;
    g.throughput(Throughput::Elements(rows));
    g.bench_function("generate_100k_rows", |b| {
        let spec = TableSpec::paper_table(33, rows, 11);
        b.iter(|| black_box(ColumnData::generate(&spec)))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("bulk_load_100k", |b| {
        b.iter(|| black_box(bench_data(100_000)))
    });
    let data = bench_data(200_000);
    g.bench_function("range_probe", |b| {
        let mut sel = 0.0f64;
        b.iter(|| {
            sel = if sel >= 0.9 { 0.001 } else { sel + 0.013 };
            let (lo, hi) = range_for_selectivity(sel, u32::MAX - 1);
            black_box(data.index.range(lo, hi))
        })
    });
    g.bench_function("leaf_page_image", |b| {
        b.iter(|| black_box(data.index.leaf_page_image(3)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_page_codec,
    bench_data_generation,
    bench_btree
);
criterion_main!(benches);
