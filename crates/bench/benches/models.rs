//! Cost-model benchmarks: DTT/QDTT lookups (the optimizer calls these in
//! its inner enumeration loop) and the cardinality formulas.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pioqo_core::{Dtt, Qdtt};
use pioqo_optimizer::card::{mackert_lohman_fetches, yao_pages};
use std::hint::black_box;

fn models() -> (Dtt, Qdtt) {
    let bands: Vec<u64> = (0..10).map(|i| 1u64 << (2 * i)).collect();
    let qds = vec![1u32, 2, 4, 8, 16, 32];
    let dtt = Dtt::new(bands.iter().map(|&b| (b, 40.0 + (b as f64).ln())).collect());
    let mut grid = Vec::new();
    for &q in &qds {
        for &b in &bands {
            grid.push((40.0 + (b as f64).ln()) / (q as f64).sqrt());
        }
    }
    (dtt, Qdtt::new(bands, qds, grid))
}

fn bench_lookups(c: &mut Criterion) {
    let (dtt, qdtt) = models();
    let mut g = c.benchmark_group("model_lookup");
    g.throughput(Throughput::Elements(1));
    g.bench_function("dtt_cost", |b| {
        let mut band = 1u64;
        b.iter(|| {
            band = (band
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493))
                % (1 << 18);
            black_box(dtt.cost(black_box(band.max(1))))
        })
    });
    g.bench_function("qdtt_cost_bilinear", |b| {
        let mut band = 1u64;
        let mut qd = 1u32;
        b.iter(|| {
            band = (band
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493))
                % (1 << 18);
            qd = qd % 32 + 1;
            black_box(qdtt.cost(black_box(band.max(1)), black_box(qd)))
        })
    });
    g.finish();
}

fn bench_cardinality(c: &mut Criterion) {
    let mut g = c.benchmark_group("cardinality");
    g.bench_function("yao_small_k", |b| {
        b.iter(|| black_box(yao_pages(black_box(250_000), black_box(8_000_000), 5_000)))
    });
    g.bench_function("yao_large_k_early_exit", |b| {
        b.iter(|| {
            black_box(yao_pages(
                black_box(250_000),
                black_box(8_000_000),
                4_000_000,
            ))
        })
    });
    g.bench_function("mackert_lohman", |b| {
        b.iter(|| {
            black_box(mackert_lohman_fetches(
                black_box(250_000),
                black_box(400_000),
                16_384,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lookups, bench_cardinality);
criterion_main!(benches);
