//! End-to-end scan benchmarks: wall-clock cost of simulating one Fig. 4 /
//! Fig. 5 point per access method, plus the sorted-index-scan ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use pioqo_bench::{bench_data, BenchData};
use pioqo_bufpool::BufferPool;
use pioqo_device::presets;
use pioqo_exec::{
    run_fts, run_is, run_sorted_is, CpuConfig, CpuCosts, FtsConfig, IsConfig, SortedIsConfig,
};
use pioqo_storage::range_for_selectivity;
use std::hint::black_box;

fn bench_scans(c: &mut Criterion) {
    let data: BenchData = bench_data(150_000);
    let (lo, hi) = range_for_selectivity(0.02, u32::MAX - 1);
    let mut g = c.benchmark_group("scan_simulation");
    g.sample_size(20);

    g.bench_function("fts_serial", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(data.capacity, 1);
            let mut pool = BufferPool::new(4096);
            black_box(
                run_fts(
                    &mut dev,
                    &mut pool,
                    CpuConfig::paper_xeon(),
                    CpuCosts::default(),
                    &data.table,
                    lo,
                    hi,
                    &FtsConfig::default(),
                )
                .expect("runs"),
            )
        })
    });

    g.bench_function("pfts32", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(data.capacity, 1);
            let mut pool = BufferPool::new(4096);
            black_box(
                run_fts(
                    &mut dev,
                    &mut pool,
                    CpuConfig::paper_xeon(),
                    CpuCosts::default(),
                    &data.table,
                    lo,
                    hi,
                    &FtsConfig {
                        workers: 32,
                        ..FtsConfig::default()
                    },
                )
                .expect("runs"),
            )
        })
    });

    g.bench_function("pis32", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(data.capacity, 1);
            let mut pool = BufferPool::new(4096);
            black_box(
                run_is(
                    &mut dev,
                    &mut pool,
                    CpuConfig::paper_xeon(),
                    CpuCosts::default(),
                    &data.table,
                    &data.index,
                    lo,
                    hi,
                    &IsConfig {
                        workers: 32,
                        prefetch_depth: 0,
                        ..IsConfig::default()
                    },
                )
                .expect("runs"),
            )
        })
    });

    g.bench_function("pis4_pf32", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(data.capacity, 1);
            let mut pool = BufferPool::new(4096);
            black_box(
                run_is(
                    &mut dev,
                    &mut pool,
                    CpuConfig::paper_xeon(),
                    CpuCosts::default(),
                    &data.table,
                    &data.index,
                    lo,
                    hi,
                    &IsConfig {
                        workers: 4,
                        prefetch_depth: 32,
                        ..IsConfig::default()
                    },
                )
                .expect("runs"),
            )
        })
    });

    g.bench_function("sorted_is", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(data.capacity, 1);
            let mut pool = BufferPool::new(4096);
            black_box(
                run_sorted_is(
                    &mut dev,
                    &mut pool,
                    CpuConfig::paper_xeon(),
                    CpuCosts::default(),
                    &data.table,
                    &data.index,
                    lo,
                    hi,
                    &SortedIsConfig::default(),
                )
                .expect("runs"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
