//! End-to-end scan benchmarks: wall-clock cost of simulating one Fig. 4 /
//! Fig. 5 point per access method, plus the sorted-index-scan ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use pioqo_bench::{bench_data, BenchData};
use pioqo_bufpool::BufferPool;
use pioqo_device::presets;
use pioqo_exec::{
    execute, CpuConfig, CpuCosts, FtsConfig, IsConfig, PlanSpec, QuerySpec, SimContext,
    SortedIsConfig,
};
use pioqo_storage::range_for_selectivity;
use std::hint::black_box;

fn bench_scans(c: &mut Criterion) {
    let data: BenchData = bench_data(150_000);
    let (lo, hi) = range_for_selectivity(0.02, u32::MAX - 1);
    let mut g = c.benchmark_group("scan_simulation");
    g.sample_size(20);

    let run_plan = |data: &BenchData, plan: &PlanSpec| {
        let mut dev = presets::consumer_pcie_ssd(data.capacity, 1);
        let mut pool = BufferPool::new(4096);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let q =
            QuerySpec::range_max(&data.table, Some(&data.index), lo, hi).with_plan(plan.clone());
        execute(&mut ctx, &q).expect("runs")
    };

    g.bench_function("fts_serial", |b| {
        let plan = PlanSpec::Fts(FtsConfig::default());
        b.iter(|| black_box(run_plan(&data, &plan)))
    });

    g.bench_function("pfts32", |b| {
        let plan = PlanSpec::Fts(FtsConfig {
            workers: 32,
            ..FtsConfig::default()
        });
        b.iter(|| black_box(run_plan(&data, &plan)))
    });

    g.bench_function("pis32", |b| {
        let plan = PlanSpec::Is(IsConfig {
            workers: 32,
            prefetch_depth: 0,
            ..IsConfig::default()
        });
        b.iter(|| black_box(run_plan(&data, &plan)))
    });

    g.bench_function("pis4_pf32", |b| {
        let plan = PlanSpec::Is(IsConfig {
            workers: 4,
            prefetch_depth: 32,
            ..IsConfig::default()
        });
        b.iter(|| black_box(run_plan(&data, &plan)))
    });

    g.bench_function("sorted_is", |b| {
        let plan = PlanSpec::SortedIs(SortedIsConfig::default());
        b.iter(|| black_box(run_plan(&data, &plan)))
    });
    g.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
