//! Optimizer benchmarks: planning latency with the DTT vs QDTT models —
//! the QDTT model must not make planning measurably slower (it is two
//! binary searches and four multiplications more).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pioqo_core::{CalibrationConfig, Calibrator, Method};
use pioqo_device::presets;
use pioqo_optimizer::{DttCost, IndexStats, Optimizer, OptimizerConfig, QdttCost, TableStats};
use pioqo_storage::Extent;
use std::hint::black_box;

fn stats() -> TableStats {
    TableStats {
        pages: 242_425,
        rows: 8_000_000,
        rows_per_page: 33,
        page_size: 4096,
        extent: Extent {
            base: 0,
            pages: 242_425,
        },
        cached_pages: 0,
        buffer_frames: 16_384,
        index: IndexStats {
            leaves: 23_670,
            height: 3,
            leaf_fanout: 338,
            extent: Extent {
                base: 242_425,
                pages: 23_750,
            },
            cached_pages: 0,
        },
    }
}

fn bench_planning(c: &mut Criterion) {
    let cal = Calibrator::new(CalibrationConfig {
        band_sizes: vec![1, 256, 4096, 1 << 16, 1 << 19],
        queue_depths: vec![1, 2, 4, 8, 16, 32],
        max_reads: 400,
        method: Method::ActiveWait,
        repetitions: 1,
        early_stop_pct: None,
        stop_fill_factor: 1.02,
        seed: 23,
    });
    let mut dev = presets::consumer_pcie_ssd(1 << 19, 1);
    let (qdtt, _) = cal.calibrate_qdtt(&mut dev);
    let dtt = qdtt.to_dtt();
    let st = stats();

    let mut g = c.benchmark_group("plan_choice");
    g.throughput(Throughput::Elements(1));
    let dtt_model = DttCost(dtt);
    let qdtt_model = QdttCost(qdtt);
    let old = Optimizer::new(&dtt_model, OptimizerConfig::default());
    let new = Optimizer::new(&qdtt_model, OptimizerConfig::default());
    let mut sel = 0.0f64;
    g.bench_function("old_dtt", |b| {
        b.iter(|| {
            sel = if sel > 0.95 { 0.0001 } else { sel + 0.0137 };
            black_box(old.choose(black_box(&st), black_box(sel)))
        })
    });
    g.bench_function("new_qdtt", |b| {
        b.iter(|| {
            sel = if sel > 0.95 { 0.0001 } else { sel + 0.0137 };
            black_box(new.choose(black_box(&st), black_box(sel)))
        })
    });
    // Ablation: enumerating all intermediate degrees.
    let wide = OptimizerConfig {
        degrees: vec![1, 2, 4, 8, 16, 32],
        ..OptimizerConfig::default()
    };
    let new_wide = Optimizer::new(&qdtt_model, wide);
    g.bench_function("new_qdtt_all_degrees", |b| {
        b.iter(|| {
            sel = if sel > 0.95 { 0.0001 } else { sel + 0.0137 };
            black_box(new_wide.choose(black_box(&st), black_box(sel)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
