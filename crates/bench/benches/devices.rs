//! Device-simulator benchmarks: how fast the models serve I/O (wall time
//! per simulated I/O), per device class and access pattern. These are the
//! inner loops behind Fig. 1 and every Fig. 4 curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pioqo_device::{presets, DeviceModel, IoRequest};
use pioqo_simkit::{SimRng, SimTime};
use std::hint::black_box;

fn drive_random(dev: &mut dyn DeviceModel, qd: u32, n: u64, seed: u64) -> SimTime {
    let cap = dev.capacity_pages();
    let mut rng = SimRng::seeded(seed);
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next = 0u64;
    while next < (qd as u64).min(n) {
        dev.submit(now, IoRequest::page(next, rng.below(cap)));
        next += 1;
    }
    while dev.outstanding() > 0 {
        let t = dev.next_event().expect("busy");
        let before = out.len();
        dev.advance(t, &mut out);
        now = t;
        for _ in before..out.len() {
            if next < n {
                dev.submit(now, IoRequest::page(next, rng.below(cap)));
                next += 1;
            }
        }
    }
    now
}

fn bench_random_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_random_io_qd32");
    let n = 4000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function(BenchmarkId::new("ssd", n), |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(1 << 20, 1);
            black_box(drive_random(&mut dev, 32, n, 5))
        })
    });
    g.bench_function(BenchmarkId::new("hdd", n), |b| {
        b.iter(|| {
            let mut dev = presets::hdd_7200(1 << 20, 1);
            black_box(drive_random(&mut dev, 32, n, 5))
        })
    });
    g.bench_function(BenchmarkId::new("raid8", n), |b| {
        b.iter(|| {
            let mut dev = presets::raid_15k(8, 1 << 20, 1);
            black_box(drive_random(&mut dev, 32, n, 5))
        })
    });
    g.finish();
}

fn bench_sequential_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_sequential_blocks");
    let blocks = 2000u64;
    g.throughput(Throughput::Elements(blocks));
    g.bench_function("ssd_16p_blocks", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(1 << 20, 1);
            let mut out = Vec::new();
            for i in 0..blocks {
                dev.submit(SimTime::ZERO, IoRequest::block(i, i * 16, 16));
            }
            black_box(pioqo_device::drain_all(&mut dev, SimTime::ZERO, &mut out))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_random_io, bench_sequential_io);
criterion_main!(benches);
