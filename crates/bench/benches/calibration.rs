//! Calibration benchmarks (Figs. 6/7/9-12's machinery): full-grid QDTT
//! calibration per device class, and the §4.6 early stop's payoff.

use criterion::{criterion_group, criterion_main, Criterion};
use pioqo_core::{CalibrationConfig, Calibrator, Method};
use pioqo_device::presets;
use std::hint::black_box;

fn cfg(early_stop: bool) -> CalibrationConfig {
    CalibrationConfig {
        band_sizes: vec![1, 256, 4096, 1 << 16],
        queue_depths: vec![1, 2, 4, 8, 16, 32],
        max_reads: 800,
        method: Method::ActiveWait,
        repetitions: 1,
        early_stop_pct: if early_stop { Some(20.0) } else { None },
        stop_fill_factor: 1.02,
        seed: 17,
    }
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibrate_qdtt");
    g.sample_size(20);
    g.bench_function("ssd_full_grid", |b| {
        b.iter(|| {
            let mut dev = presets::consumer_pcie_ssd(1 << 18, 1);
            black_box(Calibrator::new(cfg(false)).calibrate_qdtt(&mut dev))
        })
    });
    g.bench_function("hdd_full_grid", |b| {
        b.iter(|| {
            let mut dev = presets::hdd_7200(1 << 18, 1);
            black_box(Calibrator::new(cfg(false)).calibrate_qdtt(&mut dev))
        })
    });
    // Ablation: the §4.6 early stop should make HDD calibration much
    // cheaper (it measures ~1/5 of the grid).
    g.bench_function("hdd_early_stop", |b| {
        b.iter(|| {
            let mut dev = presets::hdd_7200(1 << 18, 1);
            black_box(Calibrator::new(cfg(true)).calibrate_qdtt(&mut dev))
        })
    });
    // Ablation: GW vs AW vs Threads wall cost on SSD.
    for method in [Method::GroupWait, Method::ActiveWait, Method::Threads] {
        g.bench_function(format!("ssd_point_{method:?}"), |b| {
            b.iter(|| {
                let mut dev = presets::consumer_pcie_ssd(1 << 18, 1);
                let mut c = cfg(false);
                c.method = method;
                black_box(Calibrator::new(c).measure_point(&mut dev, 1 << 16, 16))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
