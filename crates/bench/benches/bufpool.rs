//! Buffer-pool benchmarks: hit path, miss/evict path, mixed workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pioqo_bufpool::{Access, BufferPool};
use pioqo_simkit::SimRng;
use std::hint::black_box;

fn bench_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("bufpool");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));

    g.bench_function("pure_hits", |b| {
        let mut pool = BufferPool::new(1024);
        for p in 0..1024u64 {
            pool.admit_prefetched(p).expect("admit");
        }
        b.iter(|| {
            for i in 0..n {
                let p = i % 1024;
                black_box(pool.request(p));
                pool.unpin(p).expect("pinned");
            }
        })
    });

    g.bench_function("miss_evict_cycle", |b| {
        b.iter(|| {
            let mut pool = BufferPool::new(256);
            for p in 0..n {
                assert_eq!(pool.request(p), Access::Miss);
                pool.admit(p).expect("admit");
                pool.unpin(p).expect("pinned");
            }
            black_box(pool.stats().evictions)
        })
    });

    g.bench_function("zipf_ish_mixed", |b| {
        let mut rng = SimRng::seeded(3);
        // 80/20 mix: hot set within pool, cold tail beyond it.
        let pages: Vec<u64> = (0..n)
            .map(|_| {
                if rng.unit() < 0.8 {
                    rng.below(200)
                } else {
                    200 + rng.below(100_000)
                }
            })
            .collect();
        b.iter(|| {
            let mut pool = BufferPool::new(256);
            for &p in &pages {
                if pool.request(p) == Access::Miss {
                    pool.admit(p).expect("admit");
                }
                pool.unpin(p).expect("pinned");
            }
            black_box(pool.stats().hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hits);
criterion_main!(benches);
