//! `repro --concurrency`, `repro --session-export` and
//! `repro --interference`: the multi-session concurrency grid, the
//! canonical 8-session observability bundle, and the scan-vs-checkpoint
//! interference sweep.

use crate::figs::Opts;
use crate::report::{f2, results_dir, TextTable};
use pioqo_exec::WriteConfig;
use pioqo_optimizer::OptimizerConfig;
use pioqo_simkit::SimDuration;
use pioqo_workload::{
    concurrency_grid, grid_csv, interference_csv, interference_sweep, join_grid, join_grid_csv,
    session_export, session_scale_csv, session_scale_sweep, ConcurrencyConfig, DeviceKind,
    JoinGridConfig, SessionScaleConfig,
};

fn grid_config(opts: Opts, seed: u64) -> ConcurrencyConfig {
    let mut cfg = ConcurrencyConfig {
        seed,
        ..ConcurrencyConfig::default()
    };
    if opts.scale > 1 {
        cfg.rows = (cfg.rows / opts.scale).max(1_000);
    }
    cfg
}

/// Run the sessions ∈ {1, 2, 4, 8, 16} × {HDD, SSD, RAID8} grid: every
/// query admitted through QDTT-aware admission control, so plan choice
/// and parallel degree shift as the per-query queue-depth lease shrinks.
pub fn concurrency(opts: Opts, seed: u64) {
    let cfg = grid_config(opts, seed);
    let devices = [DeviceKind::Hdd, DeviceKind::Ssd, DeviceKind::Raid8];
    eprintln!(
        "[concurrency] {} rows/device, sessions {:?} ...",
        cfg.rows, cfg.session_counts
    );
    let threads = pioqo_simkit::par::thread_count();
    let cells = match concurrency_grid(&devices, &cfg, &OptimizerConfig::fine_grained(), threads) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: concurrency grid failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = TextTable::new(
        "Extension — multi-session workloads under QDTT-aware admission control",
        &[
            "device",
            "sessions",
            "completed",
            "makespan (ms)",
            "mean lat (us)",
            "fairness",
            "mean lease",
            "mean degree",
            "dominant plan",
        ],
    );
    for c in &cells {
        t.row(vec![
            c.device.clone(),
            c.sessions.to_string(),
            c.completed.to_string(),
            f2(c.makespan_ms),
            f2(c.mean_latency_us),
            f2(c.fairness),
            f2(c.mean_lease_depth),
            f2(c.mean_degree),
            c.dominant_plan(),
        ]);
    }
    t.print();
    // The full-fidelity CSV (plan mix, lease minima, p95) is the artifact
    // the acceptance check reads; the text table above is a digest.
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("concurrency_grid{}.csv", opts.suffix()));
    match std::fs::write(&path, grid_csv(&cells)) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Run the join-crossover grid: devices ∈ {HDD, SSD, RAID8} × sessions ∈
/// {1, 4, 16}. Each cell costs index-nested-loop and hybrid-hash under
/// the cell's queue-depth lease, picks the cheaper, then executes both to
/// validate the pick. Prints a digest and writes `join_crossover*.csv`.
pub fn joins(opts: Opts, seed: u64) {
    let mut cfg = JoinGridConfig {
        seed,
        ..JoinGridConfig::default()
    };
    if opts.scale > 1 {
        cfg.left_rows = (cfg.left_rows / opts.scale).max(2_000);
        cfg.right_rows = (cfg.right_rows / opts.scale).max(1_000);
    }
    let devices = [DeviceKind::Hdd, DeviceKind::Ssd, DeviceKind::Raid8];
    eprintln!(
        "[joins] {}x{} rows, sessions {:?}, sel {} ...",
        cfg.left_rows, cfg.right_rows, cfg.session_counts, cfg.selectivity
    );
    let threads = pioqo_simkit::par::thread_count();
    let cells = match join_grid(&devices, &cfg, threads) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: join grid failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = TextTable::new(
        "Extension — QDTT-costed joins: INL vs hybrid hash per device and lease",
        &[
            "device",
            "sessions",
            "lease qd",
            "INL est (us)",
            "HHJ est (us)",
            "chosen",
            "INL run (us)",
            "HHJ run (us)",
            "agree",
        ],
    );
    for c in &cells {
        t.row(vec![
            c.device.clone(),
            c.sessions.to_string(),
            c.lease_depth.to_string(),
            f2(c.inl_est_us),
            f2(c.hash_est_us),
            c.chosen.clone(),
            f2(c.inl_run_us),
            f2(c.hash_run_us),
            c.agree.to_string(),
        ]);
        if !c.answers_match {
            eprintln!(
                "error: {}/{} sessions: join operators disagree on the answer",
                c.device, c.sessions
            );
            std::process::exit(1);
        }
    }
    t.print();
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("join_crossover{}.csv", opts.suffix()));
    match std::fs::write(&path, join_grid_csv(&cells)) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Run the scan-vs-checkpoint interference sweep: sessions ∈ {1, 4, 16}
/// on the SSD fixture, each twice — flusher off, then the full write
/// path (WAL group commit + background writeback) sharing the device.
/// Prints a digest and writes `interference*.csv`.
pub fn interference(opts: Opts, seed: u64) {
    let mut cfg = ConcurrencyConfig {
        seed,
        session_counts: vec![1, 4, 16],
        ..ConcurrencyConfig::default()
    };
    if opts.scale > 1 {
        cfg.rows = (cfg.rows / opts.scale).max(1_000);
    }
    // Busy enough that checkpoint writes overlap the scan window.
    let writes = WriteConfig {
        writers: 4,
        commits_per_writer: 48,
        think: SimDuration::from_micros_f64(300.0),
        group_commit: SimDuration::from_micros_f64(150.0),
        flush_interval: SimDuration::from_micros_f64(500.0),
        flush_batch: 8,
        seed,
        ..WriteConfig::default()
    };
    eprintln!(
        "[interference] {} rows, sessions {:?}, flusher off/on ...",
        cfg.rows, cfg.session_counts
    );
    let cells = match interference_sweep(&cfg, &writes, 4_000, &OptimizerConfig::fine_grained()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: interference sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = TextTable::new(
        "Extension — scan p99 with the background flusher off vs on",
        &[
            "sessions",
            "flusher",
            "completed",
            "makespan (ms)",
            "mean lat (us)",
            "p99 lat (us)",
            "commits",
            "page flushes",
        ],
    );
    for c in &cells {
        t.row(vec![
            c.sessions.to_string(),
            if c.flusher { "on" } else { "off" }.to_string(),
            c.completed.to_string(),
            f2(c.makespan_ms),
            f2(c.mean_latency_us),
            c.p99_latency_us.to_string(),
            c.commits_acked.to_string(),
            c.data_page_flushes.to_string(),
        ]);
    }
    t.print();
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("interference{}.csv", opts.suffix()));
    match std::fs::write(&path, interference_csv(&cells)) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Run the session-scale sweep: sessions ∈ {1K, 10K} on the SSD fixture,
/// each twice — every query on its own cursor, then all scans riding the
/// cooperative shared-scan hub. Prints a digest and writes
/// `session_scale*.csv`.
pub fn session_scale(opts: Opts, seed: u64) {
    let mut cfg = SessionScaleConfig {
        seed,
        ..SessionScaleConfig::default()
    };
    if opts.scale > 1 {
        cfg.session_counts = cfg
            .session_counts
            .iter()
            .map(|&s| (s / opts.scale as u32).max(64))
            .collect();
    }
    eprintln!(
        "[session-scale] {} rows, sessions {:?}, shared off/on ...",
        cfg.rows, cfg.session_counts
    );
    let threads = pioqo_simkit::par::thread_count();
    let cells = match session_scale_sweep(&cfg, threads) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: session-scale sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = TextTable::new(
        "Extension — overlapping scans at session scale: shared cursor off vs on",
        &[
            "sessions",
            "shared",
            "completed",
            "makespan (ms)",
            "p99 lat (us)",
            "fairness",
            "attach rate",
            "cursor starts",
            "q/sim-s",
        ],
    );
    for c in &cells {
        t.row(vec![
            c.sessions.to_string(),
            if c.shared { "on" } else { "off" }.to_string(),
            c.completed.to_string(),
            f2(c.makespan_ms),
            c.p99_latency_us.to_string(),
            f2(c.fairness),
            f2(c.attach_rate),
            c.cursor_starts.to_string(),
            f2(c.queries_per_sim_s),
        ]);
    }
    t.print();
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("session_scale{}.csv", opts.suffix()));
    match std::fs::write(&path, session_scale_csv(&cells)) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Run the canonical 8-session SSD workload with tracing and write
/// `session_report.json` (engine report), `session_trace.json` (Chrome
/// trace with one track per session) and `session_admissions.json` (the
/// admission journal) into `dir`.
pub fn export_sessions(dir: &str, opts: Opts, seed: u64) {
    let _ = opts;
    eprintln!("[session-export] 8 sessions on SSD, seed {seed} ...");
    let export = match session_export(seed) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: session export failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {dir}: {e}");
        std::process::exit(1);
    }
    let admissions_json =
        serde_json::to_string_pretty(&export.admissions).unwrap_or_else(|_| String::from("[]"));
    let writes = [
        ("session_report.json", &export.report_json),
        ("session_trace.json", &export.chrome_json),
        ("session_admissions.json", &admissions_json),
    ];
    for (name, body) in writes {
        let path = std::path::Path::new(dir).join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "[session-export] wrote {} ({} bytes)",
            path.display(),
            body.len()
        );
    }
    println!(
        "[session-export] {} queries, makespan {:.3} ms, fairness {:.2}",
        export.report.total_completed(),
        export.report.makespan.as_micros_f64() / 1_000.0,
        export.report.fairness_ratio()
    );
}
