//! One function per paper figure/table. Each prints an aligned text table
//! (paper reference values alongside where the paper reports numbers) and
//! writes a CSV under `results/`.

use crate::devmeasure::{random_mb_s, sequential_mb_s};
use crate::grids;
use crate::report::{f2, pct, secs, TextTable};
use pioqo_core::{CalibrationConfig, Calibrator, Method};
use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200, raid_15k};
use pioqo_optimizer::{Optimizer, OptimizerConfig};
use pioqo_simkit::Running;
use pioqo_workload::{
    break_even, calibrate, evaluate, runtime_curve, Experiment, ExperimentConfig, MethodSpec,
};

/// Harness-wide options.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Divide experiment row counts by this factor (1 = full scale).
    pub scale: u64,
    /// Calibration repetitions for the AW/GW figures (paper uses 50).
    pub reps: u32,
    /// Buffer pool size in MB (the paper's small-memory setup is 64; the
    /// §3.2 large-memory variant used a much bigger pool).
    pub buffer_mb: u64,
}

impl Opts {
    /// CSV-id suffix distinguishing non-default configurations.
    pub fn suffix(&self) -> String {
        let mut s = String::new();
        if self.buffer_mb != 64 {
            s.push_str(&format!("_{}mb", self.buffer_mb));
        }
        if self.scale > 1 {
            s.push_str(&format!("_scale{}", self.scale));
        }
        s
    }
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 1,
            reps: 5,
            buffer_mb: 64,
        }
    }
}

fn build(name: &str, opts: Opts) -> Experiment {
    let mut cfg = ExperimentConfig::by_name(name).expect("known experiment");
    if opts.scale > 1 {
        cfg = cfg.scaled_down(opts.scale);
    }
    cfg.buffer_frames = (opts.buffer_mb << 20) as usize / 4096;
    eprintln!(
        "[build] {name}: {} rows, {} MB pool ...",
        cfg.rows, opts.buffer_mb
    );
    Experiment::build(cfg)
}

/// Fig. 1: sequential reads vs parallel 4 KiB random reads by queue depth.
pub fn fig1(_opts: Opts) {
    let cap = 1u64 << 20; // 4 GiB
    let mut t = TextTable::new(
        "Fig. 1 — throughput: non-parallel sequential vs parallel 4KB random reads",
        &["device", "pattern", "qd", "MB/s", "% of sequential"],
    );
    for dev_name in ["HDD", "SSD"] {
        // Fresh device per measurement, seeded exactly as before — the
        // factory is a plain closure over the name so the random-read
        // points can fan out across the harness pool.
        let make = || -> Box<dyn pioqo_device::DeviceModel> {
            if dev_name == "HDD" {
                Box::new(hdd_7200(cap, 7))
            } else {
                Box::new(consumer_pcie_ssd(cap, 7))
            }
        };
        let mut dev = make();
        let seq = sequential_mb_s(&mut *dev, 4096, 16);
        t.row(vec![
            dev_name.into(),
            "sequential".into(),
            "1".into(),
            f2(seq),
            "100.00".into(),
        ]);
        let qds = [1u32, 2, 4, 8, 16, 32];
        let n = if dev_name == "HDD" { 600 } else { 6000 };
        let rates = pioqo_simkit::par::par_map(0, &qds, |_rng, &qd| {
            let mut dev = make();
            random_mb_s(&mut *dev, qd, n, 11 + qd as u64)
        });
        for (&qd, &r) in qds.iter().zip(&rates) {
            t.row(vec![
                dev_name.into(),
                "random-4K".into(),
                qd.to_string(),
                f2(r),
                f2(r / seq * 100.0),
            ]);
        }
    }
    t.emit("fig1");
    println!("[paper] SSD random @qd32 ~ 51.7% of sequential; HDD random @qd32 ~ 1.3%.");
}

/// Table 1: experimental configurations.
pub fn table1(opts: Opts) {
    let mut t = TextTable::new(
        "Table 1 — experimental configurations (simulation scale)",
        &[
            "experiment",
            "table",
            "rows/page",
            "rows",
            "device",
            "buffer",
        ],
    );
    for e in ExperimentConfig::table1() {
        let e = if opts.scale > 1 {
            e.scaled_down(opts.scale)
        } else {
            e
        };
        t.row(vec![
            e.name.clone(),
            e.table.clone(),
            e.rows_per_page.to_string(),
            e.rows.to_string(),
            e.device.to_string(),
            format!("{} MB", (e.buffer_frames * 4096) >> 20),
        ]);
    }
    t.emit("table1");
}

/// Fig. 4(a–f): runtime of query Q by access method over selectivity.
pub fn fig4(opts: Opts) {
    for cfg in ExperimentConfig::table1() {
        let name = cfg.name.clone();
        let exp = build(&name, opts);
        let grid = grids::fig4_grid(&name);
        let methods = [
            MethodSpec::Is {
                workers: 1,
                prefetch: 0,
            },
            MethodSpec::Fts { workers: 1 },
            MethodSpec::Is {
                workers: 32,
                prefetch: 0,
            },
            MethodSpec::Fts { workers: 32 },
        ];
        let mut curves = Vec::new();
        for m in methods {
            eprintln!("[fig4] {name}: {m} ...");
            curves.push(runtime_curve(&exp, m, &grid));
        }
        let mut t = TextTable::new(
            &format!("Fig. 4 — runtime of Q on {name} (seconds, virtual)"),
            &["selectivity", "IS", "FTS", "PIS32", "PFTS32"],
        );
        for (i, &sel) in grid.iter().enumerate() {
            t.row(vec![
                pct(sel),
                secs(curves[0][i].runtime_s),
                secs(curves[1][i].runtime_s),
                secs(curves[2][i].runtime_s),
                secs(curves[3][i].runtime_s),
            ]);
        }
        t.emit(&format!("fig4_{}{}", name.to_lowercase(), opts.suffix()));
    }
}

/// Table 2: break-even shifts, non-parallel vs parallel, HDD vs SSD.
pub fn table2(opts: Opts) {
    let mut t = TextTable::new(
        "Table 2 — break-even selectivities (ours vs paper)",
        &[
            "experiment",
            "NP (ours)",
            "P (ours)",
            "shift (ours)",
            "NP (paper)",
            "P (paper)",
            "shift (paper)",
        ],
    );
    // Each experiment's pair of bisections is independent of the others:
    // fan the configurations out, keep row order by config.
    let cfgs = ExperimentConfig::table1();
    let rows = pioqo_simkit::par::par_map(0, &cfgs, |_rng, cfg| {
        let name = cfg.name.clone();
        let exp = build(&name, opts);
        let (np_lo, np_hi) = grids::np_bracket(&name);
        let (p_lo, p_hi) = grids::p_bracket(&name);
        eprintln!("[table2] {name}: bisecting NP break-even ...");
        let np = break_even(
            &exp,
            MethodSpec::Is {
                workers: 1,
                prefetch: 0,
            },
            MethodSpec::Fts { workers: 1 },
            np_lo,
            np_hi,
            10,
        );
        eprintln!("[table2] {name}: bisecting P break-even ...");
        let p = break_even(
            &exp,
            MethodSpec::Is {
                workers: 32,
                prefetch: 0,
            },
            MethodSpec::Fts { workers: 32 },
            p_lo,
            p_hi,
            10,
        );
        let (pnp, pp) = grids::paper_table2(&name);
        vec![
            name,
            pct(np),
            pct(p),
            f2(p / np.max(1e-9)),
            pct(pnp),
            pct(pp),
            f2(pp / pnp),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t.emit(&format!("table2{}", opts.suffix()));
}

/// Table 3: PFTS32 vs FTS I/O throughput.
pub fn table3(opts: Opts) {
    let mut t = TextTable::new(
        "Table 3 — I/O throughput of PFTS32 and FTS (MB/s; paper values in parens)",
        &[
            "experiment",
            "PFTS32 (ours)",
            "FTS (ours)",
            "ratio (ours)",
            "PFTS32 (paper)",
            "FTS (paper)",
            "ratio (paper)",
        ],
    );
    let cfgs = ExperimentConfig::table1();
    let rows = pioqo_simkit::par::par_map(0, &cfgs, |_rng, cfg| {
        let name = cfg.name.clone();
        let exp = build(&name, opts);
        eprintln!("[table3] {name} ...");
        let sel = 0.5;
        let pfts = exp
            .run_cold(MethodSpec::Fts { workers: 32 }, sel)
            .expect("runs");
        let fts = exp
            .run_cold(MethodSpec::Fts { workers: 1 }, sel)
            .expect("runs");
        let (pp, pf) = grids::paper_table3(&name);
        vec![
            name,
            f2(pfts.io.throughput_mb_s),
            f2(fts.io.throughput_mb_s),
            f2(pfts.io.throughput_mb_s / fts.io.throughput_mb_s),
            f2(pp),
            f2(pf),
            f2(pp / pf),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t.emit(&format!("table3{}", opts.suffix()));
}

/// Fig. 5: PIS runtime vs per-worker prefetch depth, by parallel degree.
pub fn fig5(opts: Opts) {
    let exp = build("E33-SSD", opts);
    let sel = 0.003;
    let prefetches = [0u32, 1, 2, 4, 8, 16, 32];
    let workers = [1u32, 2, 4, 8, 16, 32];
    let mut t = TextTable::new(
        "Fig. 5 — index scan runtime (s) vs per-worker prefetch depth n",
        &["n", "M=1", "M=2", "M=4", "M=8", "M=16", "M=32"],
    );
    // The 7x6 grid is 42 independent cold runs — flatten and fan out.
    let mut cells: Vec<(usize, usize, u32, u32)> = Vec::new();
    for (wi, &w) in workers.iter().enumerate() {
        for (pi, &p) in prefetches.iter().enumerate() {
            cells.push((wi, pi, w, p));
        }
    }
    let runtimes = pioqo_simkit::par::par_map(0, &cells, |_rng, &(_, _, w, p)| {
        eprintln!("[fig5] workers={w} prefetch={p} ...");
        exp.run_cold(
            MethodSpec::Is {
                workers: w,
                prefetch: p,
            },
            sel,
        )
        .expect("runs")
        .runtime
        .as_secs_f64()
    });
    let mut grid = vec![vec![0.0f64; workers.len()]; prefetches.len()];
    for (&(wi, pi, _, _), &rt) in cells.iter().zip(&runtimes) {
        grid[pi][wi] = rt;
    }
    for (pi, &p) in prefetches.iter().enumerate() {
        let mut row = vec![p.to_string()];
        row.extend(grid[pi].iter().map(|&v| secs(v)));
        t.row(row);
    }
    t.emit(&format!("fig5{}", opts.suffix()));
    // The paper's headline: 4 workers + prefetch 32 beats 32 workers + none.
    let w4p32 = grid[prefetches.iter().position(|&p| p == 32).expect("has 32")]
        [workers.iter().position(|&w| w == 4).expect("has 4")];
    let w32p0 = grid[0][workers.iter().position(|&w| w == 32).expect("has 32")];
    println!(
        "[check] PIS4+pf32 = {} s vs PIS32+pf0 = {} s  (paper: the former ~35% faster)",
        secs(w4p32),
        secs(w32p0)
    );
}

/// Fig. 6: calibrated DTT models for HDD and SSD.
pub fn fig6(_opts: Opts) {
    let cap = 1u64 << 20;
    let mut t = TextTable::new(
        "Fig. 6 — calibrated DTT (amortized µs per page read)",
        &["band (pages)", "HDD", "SSD"],
    );
    let cal = Calibrator::new(CalibrationConfig::for_device(cap, 3));
    // Parallel per-point calibration: one fresh cold device per grid point
    // (identical at any thread count).
    let (dtt_h, _) = cal.calibrate_dtt_with(|| hdd_7200(cap, 3));
    let (dtt_s, _) = cal.calibrate_dtt_with(|| consumer_pcie_ssd(cap, 3));
    for &b in dtt_h.band_sizes() {
        t.row(vec![b.to_string(), f2(dtt_h.cost(b)), f2(dtt_s.cost(b))]);
    }
    t.emit("fig6");
}

/// Fig. 7: calibrated QDTT models for HDD and SSD.
pub fn fig7(_opts: Opts) {
    let cap = 1u64 << 20;
    for (name, id) in [("HDD", "fig7_hdd"), ("SSD", "fig7_ssd")] {
        let cal = Calibrator::new(CalibrationConfig {
            early_stop_pct: None, // show the full surface
            ..CalibrationConfig::for_device(cap, 3)
        });
        // Full-surface calibration fans the grid out across the harness
        // pool, one fresh cold device per point.
        let qdtt = if name == "HDD" {
            cal.calibrate_qdtt_with(|| hdd_7200(cap, 3)).0
        } else {
            cal.calibrate_qdtt_with(|| consumer_pcie_ssd(cap, 3)).0
        };
        let mut t = TextTable::new(
            &format!("Fig. 7 — calibrated QDTT on {name} (µs per page read)"),
            &[
                "band (pages)",
                "qd=1",
                "qd=2",
                "qd=4",
                "qd=8",
                "qd=16",
                "qd=32",
            ],
        );
        for &b in qdtt.band_sizes() {
            let mut row = vec![b.to_string()];
            row.extend(qdtt.queue_depths().iter().map(|&q| f2(qdtt.cost(b, q))));
            t.row(row);
        }
        t.emit(id);
    }
}

/// Fig. 8(a–c): DTT-based vs QDTT-based optimizer on the SSD experiments.
pub fn fig8(opts: Opts) {
    for name in ["E1-SSD", "E33-SSD", "E500-SSD"] {
        let exp = build(name, opts);
        eprintln!("[fig8] {name}: calibrating ...");
        let models = calibrate(&exp);
        let grid = grids::fig4_grid(name);
        eprintln!("[fig8] {name}: evaluating optimizers ...");
        let pts = evaluate(&exp, &models, &OptimizerConfig::default(), &grid);
        let mut t = TextTable::new(
            &format!("Fig. 8 — old (DTT) vs new (QDTT) optimizer on {name}"),
            &[
                "selectivity",
                "old plan",
                "old (s)",
                "new plan",
                "new (s)",
                "speedup",
            ],
        );
        for p in &pts {
            t.row(vec![
                pct(p.selectivity),
                p.old_plan.clone(),
                secs(p.old_runtime_s),
                p.new_plan.clone(),
                secs(p.new_runtime_s),
                f2(p.speedup),
            ]);
        }
        t.emit(&format!("fig8_{}{}", name.to_lowercase(), opts.suffix()));
    }
    println!("[paper] max speedups: E1-SSD 19.7x, E33-SSD 16.9x, E500-SSD 13.7x.");
}

/// Extension ablations (DESIGN.md §8): prefetch-aware plan costing and the
/// sorted-index-scan access method, both driven by the QDTT optimizer on
/// E33-SSD.
pub fn ablation(opts: Opts) {
    use pioqo_workload::{cold_stats, plan_to_method};
    let exp = build("E33-SSD", opts);
    eprintln!("[ablation] calibrating ...");
    let models = calibrate(&exp);
    let stats = cold_stats(&exp);
    let qdtt = pioqo_optimizer::QdttCost(models.qdtt.clone());

    let variants: Vec<(&str, OptimizerConfig)> = vec![
        ("baseline (paper §4.3)", OptimizerConfig::default()),
        (
            "prefetch-aware (4 workers x pf8)",
            OptimizerConfig {
                degrees: vec![1, 4],
                is_prefetch_depth: 8,
                ..OptimizerConfig::default()
            },
        ),
        (
            "with sorted index scan",
            OptimizerConfig {
                consider_sorted_is: true,
                ..OptimizerConfig::default()
            },
        ),
    ];
    let mut t = TextTable::new(
        "Ablation — QDTT optimizer variants on E33-SSD (measured runtime, s)",
        &["selectivity", "variant", "plan", "runtime (s)", "mean qd"],
    );
    // Every (selectivity, variant) cell plans and runs cold independently.
    // The optimizer is rebuilt inside each cell: it borrows a
    // `dyn IoCostModel` without a Sync bound and is only two pointers.
    let mut cases: Vec<(f64, usize)> = Vec::new();
    for &sel in &[0.002, 0.02, 0.2] {
        for vi in 0..variants.len() {
            cases.push((sel, vi));
        }
    }
    let rows = pioqo_simkit::par::par_map(0, &cases, |_rng, &(sel, vi)| {
        let (name, cfg) = &variants[vi];
        let opt = Optimizer::new(&qdtt, cfg.clone());
        let plan = opt.choose(&stats, sel);
        let method = plan_to_method(&plan, cfg.is_prefetch_depth);
        eprintln!("[ablation] sel={sel} {name}: {method} ...");
        let m = exp.run_cold(method, sel).expect("plan runs");
        vec![
            pct(sel),
            (*name).into(),
            format!("{method}"),
            secs(m.runtime.as_secs_f64()),
            f2(m.io.mean_queue_depth),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t.emit("ablation");
    println!(
        "[note] prefetch-aware costing reaches the same queue depth with an\n\
         eighth of the workers — the §3.3 observation, now visible to the\n\
         optimizer; sorted IS wins midrange selectivities by never refetching."
    );
}

/// Extension — concurrency (the paper's §4.3 future work): how the
/// marginal benefit of a deep queue collapses as concurrent queries load
/// the device, and what the queue-depth budget policy would choose.
pub fn concurrency(opts: Opts) {
    use pioqo_optimizer::QdBudget;
    let exp = build("E33-SSD", opts);
    eprintln!("[concurrency] calibrating ...");
    let models = calibrate(&exp);
    let budget = QdBudget::from_model(&models.qdtt);
    let sel = 0.005;
    let degrees = [1u32, 2, 4, 8, 16, 32];
    let streams = [0u32, 3, 7, 15, 31];
    let mut t = TextTable::new(
        "Extension — PIS runtime (s) vs parallel degree under concurrent load",
        &[
            "bg streams",
            "PIS1",
            "PIS2",
            "PIS4",
            "PIS8",
            "PIS16",
            "PIS32",
            "budget pick",
        ],
    );
    // The (streams x degree) grid is 30 independent loaded runs.
    let mut cells: Vec<(u32, u32)> = Vec::new();
    for &k in &streams {
        for &d in &degrees {
            cells.push((k, d));
        }
    }
    let times = pioqo_simkit::par::par_map(0, &cells, |_rng, &(k, d)| {
        eprintln!("[concurrency] streams={k} degree={d} ...");
        exp.run_under_load(
            MethodSpec::Is {
                workers: d,
                prefetch: 0,
            },
            sel,
            k,
        )
        .expect("runs")
        .runtime
        .as_secs_f64()
    });
    for (ki, &k) in streams.iter().enumerate() {
        let mut row = vec![k.to_string()];
        for di in 0..degrees.len() {
            row.push(secs(times[ki * degrees.len() + di]));
        }
        // What the §4.3 budget policy would hand this query.
        row.push(format!("qd {}", budget.share_at(k + 1)));
        t.row(row);
    }
    t.emit("concurrency");
    println!(
        "[note] alone, degree 32 is ~an order of magnitude faster than serial;\n\
         with 31 competing streams the marginal gain of 32 vs the budget's\n\
         share shrinks toward nothing — the §4.3 rationale for passing a\n\
         lower queue depth to the QDTT model under concurrency."
    );
}

/// Extension — model accuracy: optimizer estimate vs simulated runtime for
/// every access method across selectivities (is the QDTT-based estimate a
/// usable predictor, not just a ranker?).
pub fn accuracy(opts: Opts) {
    use pioqo_optimizer::AccessMethod;
    use pioqo_workload::cold_stats;
    let exp = build("E33-SSD", opts);
    eprintln!("[accuracy] calibrating ...");
    let models = calibrate(&exp);
    let stats = cold_stats(&exp);
    let qdtt = pioqo_optimizer::QdttCost(models.qdtt.clone());
    let mut t = TextTable::new(
        "Extension — QDTT-based estimate vs simulated runtime (E33-SSD)",
        &[
            "selectivity",
            "plan",
            "est (s)",
            "measured (s)",
            "est/measured",
        ],
    );
    let candidates = [
        (AccessMethod::TableScan, 1u32),
        (AccessMethod::TableScan, 32),
        (AccessMethod::IndexScan, 1),
        (AccessMethod::IndexScan, 32),
    ];
    // 16 independent (selectivity, candidate) cells; the optimizer is
    // rebuilt per cell (it borrows a `dyn IoCostModel` with no Sync bound).
    let mut cases: Vec<(f64, AccessMethod, u32)> = Vec::new();
    for &sel in &[0.001, 0.01, 0.1, 0.5] {
        for &(method, degree) in &candidates {
            cases.push((sel, method, degree));
        }
    }
    let rows = pioqo_simkit::par::par_map(0, &cases, |_rng, &(sel, method, degree)| {
        let opt = Optimizer::new(&qdtt, OptimizerConfig::default());
        let plan = opt.cost_access(&stats, sel, method, degree);
        let spec = match method {
            AccessMethod::TableScan => MethodSpec::Fts { workers: degree },
            AccessMethod::IndexScan => MethodSpec::Is {
                workers: degree,
                prefetch: 0,
            },
            AccessMethod::SortedIndexScan => MethodSpec::SortedIs { prefetch: 32 },
        };
        eprintln!("[accuracy] sel={sel} {spec} ...");
        let m = exp.run_cold(spec, sel).expect("runs");
        let est_s = plan.est_total_us / 1e6;
        let meas_s = m.runtime.as_secs_f64();
        vec![
            pct(sel),
            format!("{spec}"),
            secs(est_s),
            secs(meas_s),
            f2(est_s / meas_s),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t.emit("accuracy");
    println!(
        "[note] the estimate only needs to *rank* plans correctly; the table\n\
         shows how far absolute predictions drift (CPU estimates are\n\
         deliberately I/O-centric, as §4.3 describes for SQL Anywhere)."
    );
}

/// Figs. 9/10/11: AW vs GW calibration on SSD and RAID.
pub fn fig9_10_11(opts: Opts) {
    let cap = 1u64 << 19;
    let bands = [1u64 << 12, 1 << 15, cap];
    let qds = [1u32, 2, 4, 8, 16, 32];

    let run = |raid: bool, id: &str, title: &str| {
        let mut t = TextTable::new(
            title,
            &["band", "qd", "GW µs", "AW µs", "AW-GW µs", "σ(AW)"],
        );
        // Every (band, qd) cell is a self-contained repetition loop with
        // its own fixed seeds (100+rep / 5+rep), so cells fan out across
        // the harness pool without changing a single value.
        let mut cells: Vec<(u64, u32)> = Vec::new();
        for &band in &bands {
            for &qd in &qds {
                cells.push((band, qd));
            }
        }
        let stats = pioqo_simkit::par::par_map(0, &cells, |_rng, &(band, qd)| {
            let mut gw = Running::new();
            let mut aw = Running::new();
            for rep in 0..opts.reps {
                let cfg = CalibrationConfig {
                    band_sizes: vec![band],
                    queue_depths: vec![qd],
                    max_reads: 3200,
                    method: Method::GroupWait,
                    repetitions: 1,
                    early_stop_pct: None,
                    stop_fill_factor: 1.02,
                    seed: 100 + rep as u64,
                };
                let mut cfg_aw = cfg.clone();
                cfg_aw.method = Method::ActiveWait;
                if raid {
                    let mut d = raid_15k(8, cap, 5 + rep as u64);
                    gw.push(Calibrator::new(cfg).measure_point(&mut d, band, qd));
                    let mut d = raid_15k(8, cap, 5 + rep as u64);
                    aw.push(Calibrator::new(cfg_aw).measure_point(&mut d, band, qd));
                } else {
                    let mut d = consumer_pcie_ssd(cap, 5 + rep as u64);
                    gw.push(Calibrator::new(cfg).measure_point(&mut d, band, qd));
                    let mut d = consumer_pcie_ssd(cap, 5 + rep as u64);
                    aw.push(Calibrator::new(cfg_aw).measure_point(&mut d, band, qd));
                }
            }
            (gw.mean(), aw.mean(), aw.std_dev())
        });
        let mut max_abs_diff = 0.0f64;
        for (&(band, qd), &(gw_mean, aw_mean, aw_sd)) in cells.iter().zip(&stats) {
            let diff = aw_mean - gw_mean;
            max_abs_diff = max_abs_diff.max(diff.abs());
            t.row(vec![
                band.to_string(),
                qd.to_string(),
                f2(gw_mean),
                f2(aw_mean),
                f2(diff),
                f2(aw_sd),
            ]);
        }
        t.emit(id);
        max_abs_diff
    };

    let ssd_diff = run(
        false,
        "fig9_10_ssd",
        "Figs. 9 & 10 — QDTT calibration on SSD: GW vs AW",
    );
    println!("[check] max |AW-GW| on SSD: {ssd_diff:.2} µs (paper: ~7 µs, negligible vs σ)");
    let raid_diff = run(
        true,
        "fig11_raid",
        "Fig. 11 — QDTT calibration on RAID-8: GW vs AW (AW substantially cheaper)",
    );
    println!("[check] max |AW-GW| on RAID-8: {raid_diff:.2} µs (paper: large, AW < GW)");
}

/// Fig. 12: exponential-qd calibration + linear interpolation vs dense
/// calibration on RAID-8.
pub fn fig12(_opts: Opts) {
    let cap = 1u64 << 19;
    let bands = [1u64 << 12, 1 << 15, cap];
    let mut t = TextTable::new(
        "Fig. 12 — dense measurement vs interpolation on RAID-8 (µs/page)",
        &[
            "band",
            "qd",
            "measured",
            "bilinear",
            "err %",
            "nearest-knot",
            "err %",
        ],
    );
    let knot_cfg = CalibrationConfig {
        band_sizes: bands.to_vec(),
        queue_depths: vec![1, 2, 4, 8, 16, 32],
        max_reads: 1600,
        method: Method::ActiveWait,
        repetitions: 3,
        early_stop_pct: None,
        stop_fill_factor: 1.02,
        seed: 21,
    };
    let mut dev = raid_15k(8, cap, 9);
    let (model, _) = Calibrator::new(knot_cfg.clone()).calibrate_qdtt(&mut dev);
    // The 96 dense-measurement points each build their own device (seed 9)
    // and calibrator, so they fan out without changing any value.
    let mut cells: Vec<(u64, u32)> = Vec::new();
    for &band in &bands {
        for qd in 1..=32u32 {
            cells.push((band, qd));
        }
    }
    let measured_pts = pioqo_simkit::par::par_map(0, &cells, |_rng, &(band, qd)| {
        let mut meas_cfg = knot_cfg.clone();
        meas_cfg.queue_depths = vec![qd];
        meas_cfg.band_sizes = vec![band];
        let mut dev = raid_15k(8, cap, 9);
        Calibrator::new(meas_cfg).measure_point(&mut dev, band, qd)
    });
    let mut worst = 0.0f64;
    let mut worst_nearest = 0.0f64;
    for (&(band, qd), &measured) in cells.iter().zip(&measured_pts) {
        let interp = model.cost(band, qd);
        let near = model.cost_nearest(band, qd);
        let err = (interp - measured).abs() / measured * 100.0;
        let err_n = (near - measured).abs() / measured * 100.0;
        worst = worst.max(err);
        worst_nearest = worst_nearest.max(err_n);
        if qd.is_power_of_two() || qd % 5 == 0 || qd == 3 {
            t.row(vec![
                band.to_string(),
                qd.to_string(),
                f2(measured),
                f2(interp),
                f2(err),
                f2(near),
                f2(err_n),
            ]);
        }
    }
    t.emit("fig12");
    println!(
        "[check] worst error: bilinear {worst:.1}% vs nearest-knot {worst_nearest:.1}% \
         (paper: bilinear over exponential knots is 'fairly accurate')"
    );
}
