//! Plain-text tables and CSV output for the reproduction harness.

use std::io::Write;
use std::path::PathBuf;

/// A simple aligned text table.
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line_len: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        println!("\n== {} ==", self.title);
        let sep: String = "-".repeat(line_len.min(120));
        println!("{sep}");
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:>w$} |", c, w = widths[i]));
            }
            s
        };
        println!("{}", fmt_row(&self.headers));
        println!("{sep}");
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
        println!("{sep}");
    }

    /// Write the table as CSV under `results/<id>.csv`; returns the path.
    pub fn write_csv(&self, id: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{id}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(path)
    }

    /// Print and persist in one call.
    pub fn emit(&self, id: &str) {
        self.print();
        match self.write_csv(id) {
            Ok(p) => println!("[csv] {}", p.display()),
            Err(e) => eprintln!("[csv] failed to write {id}: {e}"),
        }
    }
}

/// The output directory (`$PIOQO_RESULTS` or `./results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("PIOQO_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format seconds with sensible precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a selectivity as a percentage like the paper.
pub fn pct(v: f64) -> String {
    let p = v * 100.0;
    if p >= 1.0 {
        format!("{p:.2}%")
    } else if p >= 0.01 {
        format!("{p:.3}%")
    } else {
        format!("{p:.4}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_must_match_headers() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_output_round_trips() {
        std::env::set_var("PIOQO_RESULTS", std::env::temp_dir().join("pioqo-csv-test"));
        let mut t = TextTable::new("t", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        let p = t.write_csv("unit_test").expect("writes");
        let body = std::fs::read_to_string(&p).expect("reads");
        assert_eq!(body, "x,y\n1,2.5\n");
        std::fs::remove_file(&p).ok();
        std::env::remove_var("PIOQO_RESULTS");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(123.4), "123.4");
        assert_eq!(secs(1.5), "1.500");
        assert_eq!(secs(0.01234), "0.01234");
        assert_eq!(f2(4.5678), "4.57");
        assert_eq!(pct(0.021), "2.10%");
        assert_eq!(pct(0.0004), "0.040%");
        assert_eq!(pct(0.0000045), "0.0004%"); // 0.00045% rounds down at 4 dp
    }
}
