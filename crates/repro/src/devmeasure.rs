//! Raw device throughput measurement (Fig. 1).

use pioqo_device::{DeviceModel, IoRequest};
use pioqo_simkit::{SimRng, SimTime};

/// Sequential read throughput (MB/s): `n_blocks` back-to-back block reads
/// of `block_pages`, one outstanding at a time.
pub fn sequential_mb_s(dev: &mut dyn DeviceModel, n_blocks: u64, block_pages: u32) -> f64 {
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    for i in 0..n_blocks {
        dev.submit(
            now,
            IoRequest::block(i, i * block_pages as u64, block_pages),
        );
        now = pioqo_device::drain_all(dev, now, &mut out);
    }
    let bytes = n_blocks * block_pages as u64 * dev.page_size() as u64;
    pioqo_simkit::stats::mb_per_sec(bytes, now - SimTime::ZERO)
}

/// Random 4 KiB read throughput (MB/s) at a sustained queue depth `qd`
/// over the whole device.
pub fn random_mb_s(dev: &mut dyn DeviceModel, qd: u32, n_reads: u64, seed: u64) -> f64 {
    let cap = dev.capacity_pages();
    let mut rng = SimRng::seeded(seed);
    let offsets: Vec<u64> = (0..n_reads).map(|_| rng.below(cap)).collect();
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next = 0usize;
    while next < (qd as usize).min(offsets.len()) {
        dev.submit(now, IoRequest::page(next as u64, offsets[next]));
        next += 1;
    }
    while dev.outstanding() > 0 {
        let t = dev.next_event().expect("busy device");
        let before = out.len();
        dev.advance(t, &mut out);
        now = t;
        for _ in before..out.len() {
            if next < offsets.len() {
                dev.submit(now, IoRequest::page(next as u64, offsets[next]));
                next += 1;
            }
        }
    }
    pioqo_simkit::stats::mb_per_sec(n_reads * dev.page_size() as u64, now - SimTime::ZERO)
}
