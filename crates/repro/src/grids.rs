//! Selectivity grids per experiment, chosen (like the paper's Fig. 4 axes)
//! to bracket each experiment's break-even points.

/// The Fig. 4 sweep grid for an experiment id.
pub fn fig4_grid(name: &str) -> Vec<f64> {
    match name {
        // Paper break-evens: NP 0.55%, P 1.4%.
        "E1-HDD" => vec![0.0005, 0.001, 0.002, 0.004, 0.007, 0.010, 0.014, 0.020],
        // NP 8%, P 48%.
        "E1-SSD" => vec![0.01, 0.03, 0.06, 0.10, 0.20, 0.30, 0.48, 0.60],
        // NP 0.02%, P 0.05%.
        "E33-HDD" => vec![0.00005, 0.0001, 0.0002, 0.0003, 0.0005, 0.0008, 0.001],
        // NP 0.4%, P 2.1%.
        "E33-SSD" => vec![0.001, 0.002, 0.004, 0.008, 0.013, 0.021, 0.030],
        // NP 0.0045%, P 0.005%.
        "E500-HDD" => vec![0.00001, 0.00002, 0.00004, 0.00006, 0.0001, 0.0002],
        // NP 0.15%, P 0.5%.
        "E500-SSD" => vec![0.0005, 0.001, 0.0015, 0.0025, 0.004, 0.006],
        other => panic!("no grid for experiment {other}"),
    }
}

/// Bisection bracket for the non-parallel break-even of an experiment.
pub fn np_bracket(name: &str) -> (f64, f64) {
    match name {
        "E1-HDD" => (1e-4, 0.2),
        "E1-SSD" => (1e-3, 0.9),
        "E33-HDD" => (1e-5, 0.05),
        "E33-SSD" => (1e-4, 0.3),
        "E500-HDD" => (1e-6, 0.02),
        "E500-SSD" => (1e-5, 0.1),
        other => panic!("no bracket for experiment {other}"),
    }
}

/// Bisection bracket for the parallel (PIS32/PFTS32) break-even.
pub fn p_bracket(name: &str) -> (f64, f64) {
    match name {
        "E1-HDD" => (1e-4, 0.4),
        "E1-SSD" => (1e-2, 0.95),
        "E33-HDD" => (1e-5, 0.1),
        "E33-SSD" => (1e-4, 0.5),
        "E500-HDD" => (1e-6, 0.05),
        "E500-SSD" => (1e-5, 0.3),
        other => panic!("no bracket for experiment {other}"),
    }
}

/// The paper's reported break-even points (Table 2), for side-by-side
/// reporting: `(np, p)` as fractions.
pub fn paper_table2(name: &str) -> (f64, f64) {
    match name {
        "E1-HDD" => (0.0055, 0.014),
        "E1-SSD" => (0.08, 0.48),
        "E33-HDD" => (0.0002, 0.0005),
        "E33-SSD" => (0.004, 0.021),
        "E500-HDD" => (0.000045, 0.00005),
        "E500-SSD" => (0.0015, 0.005),
        other => panic!("no paper value for {other}"),
    }
}

/// The paper's Table 3 throughputs `(pfts32_mb_s, fts_mb_s)`.
pub fn paper_table3(name: &str) -> (f64, f64) {
    match name {
        "E1-HDD" => (100.45, 96.80),
        "E1-SSD" => (849.25, 263.33),
        "E33-HDD" => (106.47, 100.59),
        "E33-SSD" => (581.46, 192.16),
        "E500-HDD" => (110.94, 50.77),
        "E500-SSD" => (250.69, 57.63),
        other => panic!("no paper value for {other}"),
    }
}

#[cfg(test)]
mod tests {
    use pioqo_workload::ExperimentConfig;

    #[test]
    fn every_table1_experiment_has_grid_brackets_and_paper_values() {
        for e in ExperimentConfig::table1() {
            let g = super::fig4_grid(&e.name);
            assert!(g.len() >= 6);
            assert!(g.windows(2).all(|w| w[0] < w[1]), "grid sorted: {}", e.name);
            let (lo, hi) = super::np_bracket(&e.name);
            assert!(lo < hi);
            let (lo, hi) = super::p_bracket(&e.name);
            assert!(lo < hi);
            let (np, p) = super::paper_table2(&e.name);
            assert!(np < p * 1.01, "paper NP <= P for {}", e.name);
            let (pf, f) = super::paper_table3(&e.name);
            assert!(pf >= f, "paper PFTS >= FTS for {}", e.name);
        }
    }

    #[test]
    fn grids_bracket_the_paper_break_evens() {
        for e in ExperimentConfig::table1() {
            let g = super::fig4_grid(&e.name);
            let (np, p) = super::paper_table2(&e.name);
            let lo = g
                .first()
                .expect("fig4_grid returned an empty concurrency grid for experiment");
            let hi = g
                .last()
                .expect("fig4_grid returned an empty concurrency grid for experiment");
            assert!(
                *lo <= np,
                "grid floor above paper NP break-even for {}",
                e.name
            );
            assert!(
                *hi >= p * 0.9,
                "grid ceiling below paper P break-even for {}",
                e.name
            );
        }
    }
}
