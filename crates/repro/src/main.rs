//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale N] [--reps N] [--buffer-mb N] [--threads N] <target>...
//!   targets: fig1 table1 fig4 table2 table3 fig5 fig6 fig7 fig8
//!            fig9 fig10 fig11 fig12 all
//! ```
//!
//! `--scale N` divides experiment row counts by N (quick runs);
//! `--reps N` sets calibration repetitions for the AW/GW figures;
//! `--threads N` sets the harness thread count (equivalent to the
//! `PIOQO_THREADS` environment variable — results are byte-identical at
//! any thread count, threads only change wall-clock time).
//! Output: aligned text tables on stdout plus CSVs under `results/`
//! (override with `PIOQO_RESULTS`).

mod devmeasure;
mod figs;
mod grids;
mod report;

use figs::Opts;

fn main() {
    let mut opts = Opts::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => opts.scale = parse_positive(&mut args, "--scale"),
            "--reps" => opts.reps = parse_positive(&mut args, "--reps") as u32,
            "--buffer-mb" => opts.buffer_mb = parse_positive(&mut args, "--buffer-mb"),
            "--threads" => {
                let n = parse_positive(&mut args, "--threads");
                // The harness pool reads this on every par_map call; the
                // flag is just a spelling of the environment variable.
                std::env::set_var("PIOQO_THREADS", n.to_string());
            }
            "--help" | "-h" => usage(""),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        usage("no target given");
    }

    let started = std::time::Instant::now();
    for t in &targets {
        run_target(t, opts);
    }
    eprintln!("[done] {:.1}s wall", started.elapsed().as_secs_f64());
}

/// Parse the next argument as a strictly positive integer, or exit with a
/// usage error. `0` is rejected: a zero scale would divide row counts away
/// entirely, zero reps would produce empty statistics, and zero threads or
/// buffer pages are meaningless.
fn parse_positive(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    match args.next().and_then(|v| v.parse::<u64>().ok()) {
        Some(n) if n >= 1 => n,
        _ => usage(&format!("{flag} needs a positive integer (>= 1)")),
    }
}

fn run_target(target: &str, opts: Opts) {
    match target {
        "fig1" => figs::fig1(opts),
        "table1" => figs::table1(opts),
        "fig4" => figs::fig4(opts),
        "table2" => figs::table2(opts),
        "table3" => figs::table3(opts),
        "fig5" => figs::fig5(opts),
        "fig6" => figs::fig6(opts),
        "fig7" => figs::fig7(opts),
        "fig8" => figs::fig8(opts),
        "fig9" | "fig10" | "fig11" => figs::fig9_10_11(opts),
        "fig12" => figs::fig12(opts),
        "ablation" => figs::ablation(opts),
        "concurrency" => figs::concurrency(opts),
        "accuracy" => figs::accuracy(opts),
        "all" => {
            figs::fig1(opts);
            figs::table1(opts);
            figs::fig4(opts);
            figs::table2(opts);
            figs::table3(opts);
            figs::fig5(opts);
            figs::fig6(opts);
            figs::fig7(opts);
            figs::fig8(opts);
            figs::fig9_10_11(opts);
            figs::fig12(opts);
            figs::ablation(opts);
            figs::concurrency(opts);
            figs::accuracy(opts);
        }
        other => usage(&format!("unknown target '{other}'")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--scale N] [--reps N] [--buffer-mb N] [--threads N] <target>...\n\
         targets: fig1 table1 fig4 table2 table3 fig5 fig6 fig7 fig8 \
         fig9 fig10 fig11 fig12 ablation concurrency accuracy all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
