//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale N] [--reps N] [--buffer-mb N] [--threads N]
//!       [--trace DIR] [--trace-seed N]
//!       [--concurrency] [--interference] [--session-scale]
//!       [--session-export DIR] [--conc-seed N] <target>...
//!   targets: fig1 table1 fig4 table2 table3 fig5 fig6 fig7 fig8
//!            fig9 fig10 fig11 fig12 all
//! ```
//!
//! `--scale N` divides experiment row counts by N (quick runs);
//! `--reps N` sets calibration repetitions for the AW/GW figures;
//! `--threads N` sets the harness thread count (equivalent to the
//! `PIOQO_THREADS` environment variable — results are byte-identical at
//! any thread count, threads only change wall-clock time);
//! `--trace DIR` captures the default observability scenario (see
//! `pioqo_workload::trace`) and writes `trace.json` (Perfetto-loadable
//! Chrome trace), `hists.csv` and `summary.json` into DIR —
//! `--trace-seed N` varies its dataset/device seed. With `--trace`,
//! targets are optional.
//! `--metrics DIR` captures the default metrics scenario (see
//! `pioqo_workload::metrics`) with the integer metrics registry enabled
//! and writes `metrics.prom` (Prometheus text exposition), `series.csv`
//! (sim-time series), `metrics.json` (summary), `slo.json` (SLO
//! verdicts) and `counters.json` (Perfetto counter tracks) into DIR —
//! `--metrics-seed N` varies its seed. All five files are byte-identical
//! at any thread count. With `--metrics`, targets are optional.
//! `--profile DIR` turns on the wall-clock self-profiler for the whole
//! run and writes `profile.folded` (collapsed stacks, inferno /
//! speedscope-loadable) and `profile.txt` (per-thread phase table) into
//! DIR. Profile output is wall-clock and therefore NOT deterministic.
//! `--concurrency` runs the multi-session grid (sessions ∈ {1,2,4,8,16}
//! per device) under QDTT-aware admission control and writes
//! `concurrency_grid*.csv`; `--joins` runs the join-crossover grid
//! (devices × open sessions): both join methods costed under the cell's
//! queue-depth lease, the pick validated by executing both, written to
//! `join_crossover*.csv`; `--interference` runs the scan-vs-checkpoint
//! interference sweep (scan p99 with the background flusher off vs on at
//! 1/4/16 sessions) and writes `interference*.csv`; `--session-scale`
//! runs the 1K/10K-session overlapping-scan sweep with the cooperative
//! shared-scan cursor off vs on and writes `session_scale*.csv`;
//! `--session-export DIR` writes the canonical 8-session
//! report/trace/admission-journal JSON bundle into DIR; `--conc-seed N`
//! varies the seed of all four.
//! With any of these flags, targets are optional.
//! Output: aligned text tables on stdout plus CSVs under `results/`
//! (override with `PIOQO_RESULTS`).

mod conc;
mod devmeasure;
mod figs;
mod grids;
mod report;

use figs::Opts;

fn main() {
    let mut opts = Opts::default();
    let mut targets: Vec<String> = Vec::new();
    let mut trace_dir: Option<String> = None;
    let mut trace_seed: u64 = 0;
    let mut metrics_dir: Option<String> = None;
    let mut metrics_seed: u64 = 0;
    let mut profile_dir: Option<String> = None;
    let mut run_concurrency = false;
    let mut run_joins = false;
    let mut run_interference = false;
    let mut run_session_scale = false;
    let mut session_dir: Option<String> = None;
    let mut conc_seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => opts.scale = parse_positive(&mut args, "--scale"),
            "--reps" => opts.reps = parse_positive(&mut args, "--reps") as u32,
            "--buffer-mb" => opts.buffer_mb = parse_positive(&mut args, "--buffer-mb"),
            "--threads" => {
                let n = parse_positive(&mut args, "--threads");
                // The harness pool reads this on every par_map call; the
                // flag is just a spelling of the environment variable.
                std::env::set_var("PIOQO_THREADS", n.to_string());
            }
            "--trace" => match args.next() {
                Some(dir) => trace_dir = Some(dir),
                None => usage("--trace needs an output directory"),
            },
            "--trace-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => trace_seed = n,
                None => usage("--trace-seed needs an integer"),
            },
            "--metrics" => match args.next() {
                Some(dir) => metrics_dir = Some(dir),
                None => usage("--metrics needs an output directory"),
            },
            "--metrics-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => metrics_seed = n,
                None => usage("--metrics-seed needs an integer"),
            },
            "--profile" => match args.next() {
                Some(dir) => profile_dir = Some(dir),
                None => usage("--profile needs an output directory"),
            },
            "--concurrency" => run_concurrency = true,
            "--joins" => run_joins = true,
            "--interference" => run_interference = true,
            "--session-scale" => run_session_scale = true,
            "--session-export" => match args.next() {
                Some(dir) => session_dir = Some(dir),
                None => usage("--session-export needs an output directory"),
            },
            "--conc-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => conc_seed = n,
                None => usage("--conc-seed needs an integer"),
            },
            "--help" | "-h" => usage(""),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty()
        && trace_dir.is_none()
        && metrics_dir.is_none()
        && !run_concurrency
        && !run_joins
        && !run_interference
        && !run_session_scale
        && session_dir.is_none()
    {
        usage("no target given");
    }

    if profile_dir.is_some() {
        pioqo_profiler::enable();
    }
    let started = std::time::Instant::now();
    {
        let _run = pioqo_profiler::scope("run");
        for t in &targets {
            let _t = pioqo_profiler::scope("targets");
            run_target(t, opts);
        }
        if let Some(dir) = trace_dir {
            let _t = pioqo_profiler::scope("trace_capture");
            run_trace(opts, &dir, trace_seed);
        }
        if let Some(dir) = &metrics_dir {
            let _t = pioqo_profiler::scope("metrics_capture");
            run_metrics(opts, dir, metrics_seed);
        }
    }
    if run_concurrency {
        conc::concurrency(opts, conc_seed);
    }
    if run_joins {
        conc::joins(opts, conc_seed);
    }
    if run_interference {
        conc::interference(opts, conc_seed);
    }
    if run_session_scale {
        conc::session_scale(opts, conc_seed);
    }
    if let Some(dir) = session_dir {
        conc::export_sessions(&dir, opts, conc_seed);
    }
    if let Some(dir) = profile_dir {
        write_profile(&dir);
    }
    eprintln!("[done] {:.1}s wall", started.elapsed().as_secs_f64());
}

/// Capture the default metrics scenario and write the five exports into
/// `dir`. Deterministic in (`--scale`, `--metrics-seed`), independent of
/// the thread count.
fn run_metrics(opts: Opts, dir: &str, seed: u64) {
    let mut cells = pioqo_workload::default_metrics_cells(seed);
    for c in &mut cells {
        c.scale_down = c.scale_down.saturating_mul(opts.scale);
    }
    let threads = pioqo_simkit::par::thread_count();
    let cadence = pioqo_simkit::SimDuration::from_millis(1);
    let slos = pioqo_workload::default_slos();
    let bundle = match pioqo_workload::capture_metrics(&cells, cadence, &slos, threads) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: metrics capture failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {dir}: {e}");
        std::process::exit(1);
    }
    let writes = [
        ("metrics.prom", &bundle.prometheus),
        ("series.csv", &bundle.series_csv),
        ("metrics.json", &bundle.summary_json),
        ("slo.json", &bundle.slo_json),
        ("counters.json", &bundle.counters_json),
    ];
    for (name, body) in writes {
        let path = std::path::Path::new(dir).join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("[metrics] wrote {} ({} bytes)", path.display(), body.len());
    }
    for v in &bundle.verdicts {
        println!(
            "[metrics] slo {}: {} (observed {} vs limit {})",
            v.name,
            if v.pass { "pass" } else { "FAIL" },
            v.observed,
            v.limit
        );
    }
    if !bundle.slo_pass() {
        eprintln!("error: one or more SLOs failed");
        std::process::exit(1);
    }
}

/// Write the self-profiler's collapsed stacks and phase table into `dir`.
fn write_profile(dir: &str) {
    let report = pioqo_profiler::report();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {dir}: {e}");
        std::process::exit(1);
    }
    let writes = [
        ("profile.folded", report.collapsed()),
        ("profile.txt", report.phase_table()),
    ];
    for (name, body) in writes {
        let path = std::path::Path::new(dir).join(name);
        if let Err(e) = std::fs::write(&path, &body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("[profile] wrote {} ({} bytes)", path.display(), body.len());
    }
    eprint!("{}", report.phase_table());
}

/// Capture the default trace scenario and write the three exports into
/// `dir`. The capture is deterministic in (`--scale`, `--trace-seed`) and
/// independent of the thread count.
fn run_trace(opts: Opts, dir: &str, seed: u64) {
    let mut cells = pioqo_workload::default_trace_cells(seed);
    for c in &mut cells {
        // --scale shrinks the trace cells the same way it shrinks the
        // figure/table experiments.
        c.scale_down = c.scale_down.saturating_mul(opts.scale);
    }
    let threads = pioqo_simkit::par::thread_count();
    let bundle = match pioqo_workload::capture_trace(&cells, 1 << 16, threads) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: trace capture failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {dir}: {e}");
        std::process::exit(1);
    }
    let writes = [
        ("trace.json", &bundle.chrome_json),
        ("hists.csv", &bundle.hist_csv),
        ("summary.json", &bundle.summary_json),
    ];
    for (name, body) in writes {
        let path = std::path::Path::new(dir).join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("[trace] wrote {} ({} bytes)", path.display(), body.len());
    }
    for cell in &bundle.cells {
        println!(
            "[trace] {}: runtime {:.3}s, {} ios, modal depth {}, p99 {} us",
            cell.label,
            cell.runtime_secs,
            cell.io_ops,
            cell.modal_queue_depth,
            cell.p99_io_latency_us
        );
    }
}

/// Parse the next argument as a strictly positive integer, or exit with a
/// usage error. `0` is rejected: a zero scale would divide row counts away
/// entirely, zero reps would produce empty statistics, and zero threads or
/// buffer pages are meaningless.
fn parse_positive(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    match args.next().and_then(|v| v.parse::<u64>().ok()) {
        Some(n) if n >= 1 => n,
        _ => usage(&format!("{flag} needs a positive integer (>= 1)")),
    }
}

fn run_target(target: &str, opts: Opts) {
    match target {
        "fig1" => figs::fig1(opts),
        "table1" => figs::table1(opts),
        "fig4" => figs::fig4(opts),
        "table2" => figs::table2(opts),
        "table3" => figs::table3(opts),
        "fig5" => figs::fig5(opts),
        "fig6" => figs::fig6(opts),
        "fig7" => figs::fig7(opts),
        "fig8" => figs::fig8(opts),
        "fig9" | "fig10" | "fig11" => figs::fig9_10_11(opts),
        "fig12" => figs::fig12(opts),
        "ablation" => figs::ablation(opts),
        "concurrency" => figs::concurrency(opts),
        "accuracy" => figs::accuracy(opts),
        "all" => {
            figs::fig1(opts);
            figs::table1(opts);
            figs::fig4(opts);
            figs::table2(opts);
            figs::table3(opts);
            figs::fig5(opts);
            figs::fig6(opts);
            figs::fig7(opts);
            figs::fig8(opts);
            figs::fig9_10_11(opts);
            figs::fig12(opts);
            figs::ablation(opts);
            figs::concurrency(opts);
            figs::accuracy(opts);
        }
        other => usage(&format!("unknown target '{other}'")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--scale N] [--reps N] [--buffer-mb N] [--threads N] \
         [--trace DIR] [--trace-seed N] [--metrics DIR] [--metrics-seed N] \
         [--profile DIR] [--concurrency] [--joins] [--interference] \
         [--session-scale] [--session-export DIR] [--conc-seed N] <target>...\n\
         targets: fig1 table1 fig4 table2 table3 fig5 fig6 fig7 fig8 \
         fig9 fig10 fig11 fig12 ablation concurrency accuracy all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
