//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale N] [--reps N] <target>...
//!   targets: fig1 table1 fig4 table2 table3 fig5 fig6 fig7 fig8
//!            fig9 fig10 fig11 fig12 all
//! ```
//!
//! `--scale N` divides experiment row counts by N (quick runs);
//! `--reps N` sets calibration repetitions for the AW/GW figures.
//! Output: aligned text tables on stdout plus CSVs under `results/`
//! (override with `PIOQO_RESULTS`).

mod devmeasure;
mod figs;
mod grids;
mod report;

use figs::Opts;

fn main() {
    let mut opts = Opts::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a positive integer"));
            }
            "--reps" => {
                opts.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs a positive integer"));
            }
            "--buffer-mb" => {
                opts.buffer_mb = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--buffer-mb needs a positive integer"));
            }
            "--help" | "-h" => usage(""),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        usage("no target given");
    }

    let started = std::time::Instant::now();
    for t in &targets {
        run_target(t, opts);
    }
    eprintln!("[done] {:.1}s wall", started.elapsed().as_secs_f64());
}

fn run_target(target: &str, opts: Opts) {
    match target {
        "fig1" => figs::fig1(opts),
        "table1" => figs::table1(opts),
        "fig4" => figs::fig4(opts),
        "table2" => figs::table2(opts),
        "table3" => figs::table3(opts),
        "fig5" => figs::fig5(opts),
        "fig6" => figs::fig6(opts),
        "fig7" => figs::fig7(opts),
        "fig8" => figs::fig8(opts),
        "fig9" | "fig10" | "fig11" => figs::fig9_10_11(opts),
        "fig12" => figs::fig12(opts),
        "ablation" => figs::ablation(opts),
        "concurrency" => figs::concurrency(opts),
        "accuracy" => figs::accuracy(opts),
        "all" => {
            figs::fig1(opts);
            figs::table1(opts);
            figs::fig4(opts);
            figs::table2(opts);
            figs::table3(opts);
            figs::fig5(opts);
            figs::fig6(opts);
            figs::fig7(opts);
            figs::fig8(opts);
            figs::fig9_10_11(opts);
            figs::fig12(opts);
            figs::ablation(opts);
            figs::concurrency(opts);
            figs::accuracy(opts);
        }
        other => usage(&format!("unknown target '{other}'")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--scale N] [--reps N] [--buffer-mb N] <target>...\n\
         targets: fig1 table1 fig4 table2 table3 fig5 fig6 fig7 fig8 \
         fig9 fig10 fig11 fig12 ablation concurrency accuracy all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
