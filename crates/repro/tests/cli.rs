//! End-to-end CLI tests for the `repro` binary: argument validation and
//! thread-count-invariant (byte-identical) CSV output.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A unique empty scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pioqo-repro-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch results directory");
    dir
}

#[test]
fn rejects_zero_scale_reps_buffer_and_threads() {
    for flag in ["--scale", "--reps", "--buffer-mb", "--threads"] {
        let out = repro()
            .args([flag, "0", "table1"])
            .output()
            .expect("spawn repro binary");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} 0 must exit with a usage error"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("positive integer"),
            "{flag} 0 should explain the constraint, got: {err}"
        );
    }
}

#[test]
fn rejects_non_numeric_and_missing_flag_values() {
    for args in [&["--scale", "eight", "table1"][..], &["--scale"][..]] {
        let out = repro().args(args).output().expect("spawn repro binary");
        assert_eq!(out.status.code(), Some(2), "bad value for {args:?}");
    }
}

#[test]
fn rejects_unknown_target() {
    let out = repro().arg("fig99").output().expect("spawn repro binary");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_exits_cleanly() {
    let out = repro().arg("--help").output().expect("spawn repro binary");
    assert_eq!(out.status.code(), Some(0));
}

/// The tentpole guarantee: thread count is invisible in the results. Run
/// `fig1 fig4` (device measurements + four-method sweep over six
/// experiments) at 1 and at 4 harness threads and require every CSV to be
/// byte-identical. CI repeats this at `--scale 8`; the in-tree test uses a
/// smaller scale to stay fast in debug builds.
#[test]
fn csv_output_is_byte_identical_across_thread_counts() {
    let dir1 = scratch("t1");
    let dir4 = scratch("t4");
    for (threads, dir) in [("1", &dir1), ("4", &dir4)] {
        let out = repro()
            .args(["fig1", "fig4", "--scale", "64", "--threads", threads])
            .env("PIOQO_RESULTS", dir)
            .env_remove("PIOQO_THREADS")
            .output()
            .expect("spawn repro binary");
        assert!(
            out.status.success(),
            "repro --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let mut names: Vec<String> = std::fs::read_dir(&dir1)
        .expect("read results directory")
        .map(|e| {
            e.expect("read results directory entry")
                .file_name()
                .into_string()
                .expect("csv file names are valid unicode")
        })
        .collect();
    names.sort();
    assert!(
        names.iter().any(|n| n.starts_with("fig1")) && names.iter().any(|n| n.starts_with("fig4")),
        "expected fig1 and fig4 CSVs, got {names:?}"
    );
    for name in &names {
        let a = std::fs::read(dir1.join(name)).expect("read single-thread csv");
        let b = std::fs::read(dir4.join(name)).expect("read four-thread csv");
        assert_eq!(a, b, "{name} differs between --threads 1 and --threads 4");
    }

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}
