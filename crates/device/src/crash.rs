//! Crash injection: halt a device at a chosen virtual time.
//!
//! [`Crashable`] wraps a [`DeviceModel`] and executes a [`CrashPlan`]: at
//! sim-time `at` the device halts. Completions that finished strictly
//! before the crash instant are delivered (they are durable); everything
//! still in flight is discarded and classified:
//!
//! * in-flight **writes** are either *torn* (the media holds a damaged
//!   partial image, detected later by per-page checksums) or *lost* (the
//!   media is unchanged), chosen by a stateless seeded per-offset hash so
//!   the outcome is byte-deterministic and independent of arrival order;
//! * in-flight **reads** are merely *aborted* — reads have no durability.
//!
//! The wrapper reports the crash instant as a device event
//! ([`next_event`](DeviceModel::next_event) returns `min(inner, at)`), so a
//! discrete-event loop naturally steps onto the crash. After the crash the
//! device accepts no work, reports zero outstanding I/Os, and
//! [`crashed`](DeviceModel::crashed) returns `true`; engines surface this
//! as a typed error instead of spinning. The post-crash damage itself is
//! applied by the recovery harness using [`CrashReport`] against a
//! [`MediaStore`](crate::MediaStore) — device models move time, not bytes.

use crate::io::{DeviceModel, IoCompletion, IoKind, IoRequest};
use pioqo_simkit::{SimRng, SimTime};
use std::collections::BTreeMap;

/// When and how a [`Crashable`] device halts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// Virtual time at which the device halts. Completions with
    /// `completed < at` are durable; in-flight work is torn/lost/aborted.
    pub at: SimTime,
    /// Probability that an in-flight write is *torn* (damaged partial
    /// image on media) rather than *lost* (media unchanged). Drawn from a
    /// stateless per-offset hash of `seed`.
    pub torn_fraction: f64,
    /// Seed of the torn/lost classification hash.
    pub seed: u64,
}

impl CrashPlan {
    /// Crash at `at` with every in-flight write torn (the adversarial
    /// default for recovery testing).
    pub fn at(at: SimTime, seed: u64) -> Self {
        CrashPlan {
            at,
            torn_fraction: 1.0,
            seed,
        }
    }
}

/// What was in flight when the device halted.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// Writes classified as torn: the media holds a damaged partial image.
    pub torn_writes: Vec<IoRequest>,
    /// Writes classified as lost: the media is unchanged.
    pub lost_writes: Vec<IoRequest>,
    /// Reads in flight at the crash (no durability implications).
    pub aborted_reads: Vec<IoRequest>,
}

impl CrashReport {
    /// Total in-flight requests discarded by the crash.
    pub fn discarded(&self) -> usize {
        self.torn_writes.len() + self.lost_writes.len() + self.aborted_reads.len()
    }
}

/// A [`DeviceModel`] decorator that halts the device per a [`CrashPlan`].
pub struct Crashable<D> {
    inner: D,
    plan: CrashPlan,
    /// Requests submitted but not yet completed, by request id.
    inflight: BTreeMap<u64, IoRequest>,
    crashed: bool,
    report: CrashReport,
    scratch: Vec<IoCompletion>,
}

impl<D: DeviceModel> Crashable<D> {
    /// Wrap a device with a crash plan.
    pub fn new(inner: D, plan: CrashPlan) -> Self {
        Crashable {
            inner,
            plan,
            inflight: BTreeMap::new(),
            crashed: false,
            report: CrashReport::default(),
            scratch: Vec::new(),
        }
    }

    /// The plan this wrapper executes.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The crash inventory, available once the device has crashed.
    pub fn crash_report(&self) -> Option<&CrashReport> {
        self.crashed.then_some(&self.report)
    }

    /// True when the seeded per-offset hash marks an in-flight write at
    /// `offset` as torn (vs lost). Stateless, so the classification is
    /// independent of submit/completion order.
    fn torn_hit(&self, offset: u64) -> bool {
        SimRng::seeded(self.plan.seed ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15)).unit()
            < self.plan.torn_fraction
    }

    /// Discard all in-flight work and halt. `inflight` drains in request-id
    /// order (BTreeMap), so the report vectors are deterministic.
    fn crash_now(&mut self) {
        let inflight = std::mem::take(&mut self.inflight);
        for (_, req) in inflight {
            match req.kind {
                IoKind::Write => {
                    if self.torn_hit(req.offset) {
                        self.report.torn_writes.push(req);
                    } else {
                        self.report.lost_writes.push(req);
                    }
                }
                IoKind::Read => self.report.aborted_reads.push(req),
            }
        }
        self.crashed = true;
    }
}

impl<D: DeviceModel> DeviceModel for Crashable<D> {
    fn page_size(&self) -> u32 {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        if self.crashed || now >= self.plan.at {
            // Work handed to a dead device: never reached the queue, so a
            // write is lost (not torn) and a read is aborted.
            if !self.crashed {
                // The engine raced past the crash instant without an
                // advance; halt before classifying.
                self.crash_now();
            }
            match req.kind {
                IoKind::Write => self.report.lost_writes.push(req),
                IoKind::Read => self.report.aborted_reads.push(req),
            }
            return;
        }
        self.inflight.insert(req.id, req);
        self.inner.submit(now, req);
    }

    fn next_event(&self) -> Option<SimTime> {
        if self.crashed {
            return None;
        }
        // The crash instant is itself an event, so event loops step onto
        // it even when the inner device would sleep past it.
        Some(match self.inner.next_event() {
            Some(t) => t.min(self.plan.at),
            None => self.plan.at,
        })
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        if self.crashed {
            return;
        }
        self.scratch.clear();
        self.inner.advance(now, &mut self.scratch);
        let mut completions = std::mem::take(&mut self.scratch);
        for c in completions.drain(..) {
            // Strictly-before the crash instant: durable, delivered. At or
            // after: the crash preempts the completion.
            if c.completed < self.plan.at {
                self.inflight.remove(&c.req.id);
                out.push(c);
            }
        }
        self.scratch = completions;
        if now >= self.plan.at {
            self.crash_now();
        }
    }

    fn outstanding(&self) -> usize {
        if self.crashed {
            0
        } else {
            self.inner.outstanding()
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset_state(&mut self) {
        assert!(
            !self.crashed && self.inflight.is_empty(),
            "reset_state on a crashed or busy Crashable device"
        );
        self.inner.reset_state();
    }

    fn crashed(&self) -> bool {
        self.crashed
    }

    fn channels(&self) -> u32 {
        self.inner.channels()
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        if self.crashed {
            0
        } else {
            self.inner.channels_busy(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{drain_all, IoStatus};
    use crate::presets::consumer_pcie_ssd;

    fn crashable(at_us: u64, seed: u64) -> Crashable<crate::Ssd> {
        Crashable::new(
            consumer_pcie_ssd(1 << 16, 1),
            CrashPlan {
                at: SimTime::from_micros(at_us),
                torn_fraction: 0.5,
                seed,
            },
        )
    }

    #[test]
    fn no_crash_before_the_instant() {
        let mut d = crashable(1_000_000, 7);
        for i in 0..8u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        // drain_all walks next_event, which eventually reports the crash
        // instant; all 8 reads complete long before 1s.
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|c| c.status == IoStatus::Ok));
    }

    #[test]
    fn crash_discards_inflight_and_halts() {
        let mut d = crashable(5, 7);
        for i in 0..16u64 {
            d.submit(SimTime::ZERO, IoRequest::write_page(i, i * 3));
        }
        let mut out = Vec::new();
        d.advance(SimTime::from_micros(5), &mut out);
        assert!(d.crashed());
        assert_eq!(d.outstanding(), 0);
        assert_eq!(d.next_event(), None);
        let report = d
            .crash_report()
            .expect("crashed device has a report")
            .clone();
        assert_eq!(out.len() + report.discarded(), 16);
        assert!(
            !report.torn_writes.is_empty() && !report.lost_writes.is_empty(),
            "torn_fraction=0.5 over many writes should produce both kinds"
        );
        // Dead device swallows further work into the report.
        d.submit(SimTime::from_micros(9), IoRequest::write_page(99, 0));
        assert_eq!(
            d.crash_report().expect("still crashed").lost_writes.len(),
            report.lost_writes.len() + 1
        );
    }

    #[test]
    fn reads_are_aborted_not_torn() {
        let mut d = crashable(5, 7);
        for i in 0..4u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        d.advance(SimTime::from_micros(5), &mut Vec::new());
        let report = d.crash_report().expect("crashed");
        assert!(report.torn_writes.is_empty() && report.lost_writes.is_empty());
        assert!(!report.aborted_reads.is_empty());
        assert_eq!(d.outstanding(), 0);
    }

    #[test]
    fn crash_classification_is_deterministic() {
        let run = |order_rev: bool| {
            let mut d = crashable(5, 21);
            let ids: Vec<u64> = if order_rev {
                (0..32).rev().collect()
            } else {
                (0..32).collect()
            };
            for i in ids {
                d.submit(SimTime::ZERO, IoRequest::write_page(i, i * 5));
            }
            d.advance(SimTime::from_micros(5), &mut Vec::new());
            let r = d.crash_report().expect("crashed").clone();
            let mut torn: Vec<u64> = r.torn_writes.iter().map(|w| w.offset).collect();
            torn.sort_unstable();
            torn
        };
        assert_eq!(
            run(false),
            run(true),
            "torn/lost classification must depend on offset+seed only"
        );
    }

    #[test]
    fn drain_all_terminates_through_a_crash() {
        let mut d = crashable(3, 1);
        for i in 0..64u64 {
            d.submit(SimTime::ZERO, IoRequest::write_page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert!(d.crashed());
        assert!(out.iter().all(|c| c.completed < SimTime::from_micros(3)));
    }
}
