//! Device presets mirroring the paper's evaluation hardware (§3.1, §4.4):
//!
//! * a commodity 7200 RPM hard drive (~110 MB/s sequential),
//! * a consumer PCIe SSD (1.5 GB/s sequential read, 230K random read IOPS),
//! * an 8-spindle 15 000 RPM RAID array (Fig. 11, Fig. 12).
//!
//! Capacities are parameters because experiments size devices to their
//! tables; the paper's effects depend on *ratios*, not absolute capacity.

use crate::hdd::{Hdd, HddConfig};
use crate::raid::{Raid, RaidConfig};
use crate::ssd::{Ssd, SsdConfig};

/// Default page size used throughout the reproduction (4 KiB).
pub const PAGE_SIZE: u32 = 4096;

/// Configuration for the paper's commodity 7200 RPM hard drive.
pub fn hdd_7200_config(capacity_pages: u64, seed: u64) -> HddConfig {
    HddConfig {
        page_size: PAGE_SIZE,
        capacity_pages,
        seq_bandwidth_mb_s: 110.0,
        track_to_track_ms: 0.5,
        max_seek_ms: 14.0,
        rpm: 7200.0,
        random_overhead_us: 30.0,
        seq_overhead_us: 3.0,
        sstf: true,
        rpo_factor: 0.25,
        jitter: 0.02,
        seed,
        name: "hdd-7200".into(),
    }
}

/// The paper's commodity 7200 RPM hard drive.
pub fn hdd_7200(capacity_pages: u64, seed: u64) -> Hdd {
    Hdd::new(hdd_7200_config(capacity_pages, seed))
}

/// Configuration for the paper's consumer PCIe SSD:
/// 1.5 GB/s sequential read, 230K IOPS random read, beneficial queue depth 32.
pub fn consumer_pcie_ssd_config(capacity_pages: u64, seed: u64) -> SsdConfig {
    SsdConfig {
        page_size: PAGE_SIZE,
        capacity_pages,
        n_channels: 32,
        flash_read_us: 62.0,
        bus_bandwidth_mb_s: 1500.0,
        max_iops: 230_000.0,
        per_io_overhead_us: 8.0,
        stripe_pages: 1,
        map_region_pages: 1 << 14, // 64 MiB mapping regions
        map_cache_regions: 16,
        map_miss_us: 18.0,
        jitter: 0.02,
        seed,
        name: "ssd-pcie".into(),
    }
}

/// The paper's consumer PCIe SSD.
pub fn consumer_pcie_ssd(capacity_pages: u64, seed: u64) -> Ssd {
    Ssd::new(consumer_pcie_ssd_config(capacity_pages, seed))
}

/// Configuration for one 15 000 RPM spindle (used inside RAID presets).
pub fn hdd_15k_config(capacity_pages: u64, seed: u64) -> HddConfig {
    HddConfig {
        page_size: PAGE_SIZE,
        capacity_pages,
        seq_bandwidth_mb_s: 180.0,
        track_to_track_ms: 0.2,
        max_seek_ms: 8.0,
        rpm: 15_000.0,
        random_overhead_us: 20.0,
        seq_overhead_us: 3.0,
        sstf: true,
        rpo_factor: 0.25,
        jitter: 0.02,
        seed,
        name: "hdd-15k".into(),
    }
}

/// A "future technology" the paper never saw (§1 motivates optimizers
/// that adapt to devices beyond HDD/SSD/RAID): a gen4-class NVMe drive —
/// far lower latency, far more internal parallelism, a 7 GB/s link and a
/// ~1M IOPS interface. Nothing in the optimizer knows about it; the
/// calibration process alone adapts the cost model.
pub fn nvme_gen4_config(capacity_pages: u64, seed: u64) -> SsdConfig {
    SsdConfig {
        page_size: PAGE_SIZE,
        capacity_pages,
        n_channels: 128,
        flash_read_us: 40.0,
        bus_bandwidth_mb_s: 7000.0,
        max_iops: 1_000_000.0,
        per_io_overhead_us: 3.0,
        stripe_pages: 1,
        map_region_pages: 1 << 16,
        map_cache_regions: 64,
        map_miss_us: 8.0,
        jitter: 0.02,
        seed,
        name: "nvme-gen4".into(),
    }
}

/// The gen4 NVMe preset (see [`nvme_gen4_config`]).
pub fn nvme_gen4(capacity_pages: u64, seed: u64) -> Ssd {
    Ssd::new(nvme_gen4_config(capacity_pages, seed))
}

/// The paper's RAID array: `n_spindles` 15K drives, 64 KiB stripes.
/// `capacity_pages` is the **total** array capacity.
pub fn raid_15k(n_spindles: u32, capacity_pages: u64, seed: u64) -> Raid {
    let stripe_pages = 16u64; // 64 KiB
                              // Round the per-spindle size up to whole stripe units: the striped
                              // page mapping addresses spindles stripe-by-stripe, so a spindle cut
                              // mid-stripe would put the array's last pages past its end whenever
                              // the requested capacity is not a multiple of spindles × stripe.
    let stripes = capacity_pages.div_ceil(stripe_pages);
    let per_spindle = stripes.div_ceil(n_spindles as u64) * stripe_pages;
    Raid::new(RaidConfig {
        spindle: hdd_15k_config(per_spindle, seed),
        n_spindles,
        stripe_pages: stripe_pages as u32,
        degraded_spindle: None,
        reconstruct_overhead_us: 10.0,
        name: format!("raid-15k-x{n_spindles}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::DeviceModel;

    #[test]
    fn presets_build_and_report() {
        let h = hdd_7200(1 << 20, 1);
        assert_eq!(h.page_size(), 4096);
        assert_eq!(h.capacity_pages(), 1 << 20);
        assert_eq!(h.name(), "hdd-7200");

        let s = consumer_pcie_ssd(1 << 20, 1);
        assert_eq!(s.name(), "ssd-pcie");
        assert_eq!(s.config().n_channels, 32);

        let r = raid_15k(8, 1 << 20, 1);
        assert_eq!(r.name(), "raid-15k-x8");
        assert!(r.capacity_pages() >= 1 << 20);

        let n = nvme_gen4(1 << 20, 1);
        assert_eq!(n.name(), "nvme-gen4");
        assert_eq!(n.config().n_channels, 128);
    }
}
