//! Fault injection for failure-path testing.
//!
//! [`Faulty`] wraps a [`DeviceModel`] and flips selected completions to
//! [`IoStatus::Error`] — either every request whose id is in an explicit
//! set, or one request in every `n` (deterministic round-robin). The scan
//! operators and the calibrator must surface these as errors rather than
//! silently producing wrong answers.

use crate::io::{DeviceModel, IoCompletion, IoRequest, IoStatus};
use pioqo_simkit::SimTime;
use std::collections::BTreeSet;

/// Which completions to fail.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Fail requests with these exact ids.
    Ids(BTreeSet<u64>),
    /// Fail every `n`-th completed request (1-based: `EveryNth(3)` fails the
    /// 3rd, 6th, ... completion).
    EveryNth(u64),
    /// Never fail (useful to toggle plans in tests).
    None,
}

/// A [`DeviceModel`] decorator that injects read errors.
pub struct Faulty<D> {
    inner: D,
    plan: FaultPlan,
    completed: u64,
    injected: u64,
    scratch: Vec<IoCompletion>,
}

impl<D: DeviceModel> Faulty<D> {
    /// Wrap a device with a fault plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        Faulty {
            inner,
            plan,
            completed: 0,
            injected: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of errors injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn should_fail(&mut self, req: &IoRequest) -> bool {
        match &self.plan {
            FaultPlan::Ids(ids) => ids.contains(&req.id),
            FaultPlan::EveryNth(n) => *n > 0 && self.completed.is_multiple_of(*n),
            FaultPlan::None => false,
        }
    }
}

impl<D: DeviceModel> DeviceModel for Faulty<D> {
    fn page_size(&self) -> u32 {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        self.inner.submit(now, req);
    }

    fn next_event(&self) -> Option<SimTime> {
        self.inner.next_event()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        self.scratch.clear();
        self.inner.advance(now, &mut self.scratch);
        let mut completions = std::mem::take(&mut self.scratch);
        for mut c in completions.drain(..) {
            self.completed += 1;
            if self.should_fail(&c.req) {
                c.status = IoStatus::Error;
                self.injected += 1;
            }
            out.push(c);
        }
        self.scratch = completions;
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset_state(&mut self) {
        self.inner.reset_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::drain_all;
    use crate::presets::consumer_pcie_ssd;

    #[test]
    fn fails_selected_ids() {
        let plan = FaultPlan::Ids([2u64, 4u64].into_iter().collect());
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), plan);
        for i in 0..6u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        let failed: Vec<u64> = out
            .iter()
            .filter(|c| c.status == IoStatus::Error)
            .map(|c| c.req.id)
            .collect();
        assert_eq!(failed.len(), 2);
        assert!(failed.contains(&2) && failed.contains(&4));
        assert_eq!(d.injected(), 2);
    }

    #[test]
    fn every_nth_is_periodic() {
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), FaultPlan::EveryNth(3));
        for i in 0..9u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        let errors = out.iter().filter(|c| c.status == IoStatus::Error).count();
        assert_eq!(errors, 3);
    }

    #[test]
    fn none_plan_never_fails() {
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), FaultPlan::None);
        for i in 0..10u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert!(out.iter().all(|c| c.status == IoStatus::Ok));
    }
}
