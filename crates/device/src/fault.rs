//! Fault injection for failure-path and resilience testing.
//!
//! [`Faulty`] wraps a [`DeviceModel`] and perturbs selected completions:
//!
//! * **Hard faults** flip a completion to [`IoStatus::Error`] — by explicit
//!   request id, deterministic round-robin, or a seeded coin flip.
//! * **Transient faults** ([`FaultPlan::Transient`]) fail a *page's* first
//!   `attempts` reads and let later attempts succeed, modeling media errors
//!   cured by retry. Selection is keyed on the request offset (not the id),
//!   so a re-submitted read of the same page is recognised as a retry.
//! * **Tail latency** ([`Faulty::with_tail_latency`]) stretches a seeded
//!   fraction of completions to a multiple of their device latency,
//!   modeling the p99 stragglers that make naive device models diverge at
//!   depth. Delayed completions are held inside the wrapper and released
//!   at their stretched completion time.
//!
//! Every stochastic choice flows through the workspace's seeded
//! [`SimRng`], so a given seed perturbs a run bit-for-bit reproducibly.
//! The scan operators must surface injected errors as typed errors (or
//! absorb them via retry) rather than silently producing wrong answers.

use crate::io::{DeviceModel, IoCompletion, IoRequest, IoStatus};
use pioqo_simkit::{SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Which completions to fail.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Fail requests with these exact ids.
    Ids(BTreeSet<u64>),
    /// Fail every `n`-th completed request (1-based: `EveryNth(3)` fails the
    /// 3rd, 6th, ... completion).
    EveryNth(u64),
    /// Fail each completion independently with probability `p`, drawn from
    /// a [`SimRng`] seeded with `seed` (draws happen in completion order,
    /// which is itself deterministic).
    Random {
        /// Per-completion failure probability in `[0, 1]`.
        p: f64,
        /// Seed of the fault stream.
        seed: u64,
    },
    /// Transient faults: offsets selected with probability `p` (by a
    /// stateless per-offset hash of `seed`) fail their first `attempts`
    /// reads, then succeed. A retrying engine recovers; a non-retrying
    /// one sees a hard error.
    Transient {
        /// Probability that a given offset is fault-prone.
        p: f64,
        /// How many leading attempts on a faulty offset fail.
        attempts: u32,
        /// Seed of the per-offset selection hash.
        seed: u64,
    },
    /// Never fail (useful to toggle plans in tests).
    None,
}

/// Tail-latency injection parameters (see [`Faulty::with_tail_latency`]).
struct Tail {
    fraction: f64,
    multiplier: f64,
    seed: u64,
    rng: SimRng,
}

/// A [`DeviceModel`] decorator that injects read errors and latency tails.
pub struct Faulty<D> {
    inner: D,
    plan: FaultPlan,
    completed: u64,
    injected: u64,
    delayed: u64,
    plan_rng: SimRng,
    /// Attempts observed so far per fault-prone offset (Transient plans).
    seen_attempts: BTreeMap<u64, u32>,
    tail: Option<Tail>,
    /// Completions held back by tail injection, keyed by release time.
    held: BTreeMap<SimTime, Vec<IoCompletion>>,
    scratch: Vec<IoCompletion>,
}

impl<D: DeviceModel> Faulty<D> {
    /// Wrap a device with a fault plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        let plan_rng = Self::rng_for(&plan);
        Faulty {
            inner,
            plan,
            completed: 0,
            injected: 0,
            delayed: 0,
            plan_rng,
            seen_attempts: BTreeMap::new(),
            tail: None,
            held: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Additionally stretch a seeded `fraction` of completions to
    /// `multiplier ×` their device latency (released at the stretched
    /// time). `fraction = 0` or `multiplier <= 1` disables injection.
    pub fn with_tail_latency(mut self, fraction: f64, multiplier: f64, seed: u64) -> Self {
        self.tail = Some(Tail {
            fraction,
            multiplier,
            seed,
            rng: SimRng::seeded(seed),
        });
        self
    }

    fn rng_for(plan: &FaultPlan) -> SimRng {
        match plan {
            FaultPlan::Random { seed, .. } => SimRng::seeded(*seed),
            // Plans that draw nothing still get a fixed stream so the
            // struct stays uniform.
            _ => SimRng::seeded(0),
        }
    }

    /// Number of errors injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of completions delayed by tail injection so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// True when a Transient plan marks `offset` fault-prone: a stateless
    /// hash of (seed, offset), so selection is independent of arrival
    /// order and stable across retries and resets.
    fn transient_hit(p: f64, seed: u64, offset: u64) -> bool {
        SimRng::seeded(seed ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15)).unit() < p
    }

    fn should_fail(&mut self, req: &IoRequest) -> bool {
        match &self.plan {
            FaultPlan::Ids(ids) => ids.contains(&req.id),
            FaultPlan::EveryNth(n) => *n > 0 && self.completed.is_multiple_of(*n),
            FaultPlan::Random { p, .. } => self.plan_rng.unit() < *p,
            FaultPlan::Transient { p, attempts, seed } => {
                if !Self::transient_hit(*p, *seed, req.offset) {
                    return false;
                }
                let seen = self.seen_attempts.entry(req.offset).or_insert(0);
                *seen += 1;
                *seen <= *attempts
            }
            FaultPlan::None => false,
        }
    }
}

impl<D: DeviceModel> DeviceModel for Faulty<D> {
    fn page_size(&self) -> u32 {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        self.inner.submit(now, req);
    }

    fn next_event(&self) -> Option<SimTime> {
        let held = self.held.keys().next().copied();
        match (self.inner.next_event(), held) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        self.scratch.clear();
        self.inner.advance(now, &mut self.scratch);
        let mut completions = std::mem::take(&mut self.scratch);
        let emit_from = out.len();
        for mut c in completions.drain(..) {
            self.completed += 1;
            if self.should_fail(&c.req) {
                c.status = IoStatus::Error;
                self.injected += 1;
            }
            // Tail injection applies to successes only: an errored request
            // already terminated early at the device.
            if c.status == IoStatus::Ok {
                if let Some(tail) = &mut self.tail {
                    if tail.fraction > 0.0
                        && tail.multiplier > 1.0
                        && tail.rng.unit() < tail.fraction
                    {
                        self.delayed += 1;
                        let release = c.submitted + c.latency() * tail.multiplier;
                        c.completed = release;
                        if release > now {
                            self.held.entry(release).or_default().push(c);
                            continue;
                        }
                    }
                }
            }
            out.push(c);
        }
        self.scratch = completions;
        // Release held completions that are due by `now`.
        while let Some((&t, _)) = self.held.iter().next() {
            if t > now {
                break;
            }
            let batch = self.held.remove(&t).expect("key taken from live iterator");
            out.extend(batch);
        }
        // Keep deliveries in completion-time order regardless of whether
        // they came from the device or the held queue (stable on ties by
        // request id, so the order is fully deterministic).
        out[emit_from..].sort_by_key(|c| (c.completed, c.req.id));
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding() + self.held.values().map(Vec::len).sum::<usize>()
    }

    fn channels(&self) -> u32 {
        self.inner.channels()
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        self.inner.channels_busy(now)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset_state(&mut self) {
        assert!(
            self.held.is_empty(),
            "reset_state with tail-delayed completions still held"
        );
        self.inner.reset_state();
        // Counters and streams restart so the plan fires at the same
        // positions after a reset (calibration points must not leak fault
        // phase into each other).
        self.completed = 0;
        self.injected = 0;
        self.delayed = 0;
        self.plan_rng = Self::rng_for(&self.plan);
        self.seen_attempts.clear();
        if let Some(tail) = &mut self.tail {
            tail.rng = SimRng::seeded(tail.seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::drain_all;
    use crate::presets::consumer_pcie_ssd;

    #[test]
    fn fails_selected_ids() {
        let plan = FaultPlan::Ids([2u64, 4u64].into_iter().collect());
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), plan);
        for i in 0..6u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        let failed: Vec<u64> = out
            .iter()
            .filter(|c| c.status == IoStatus::Error)
            .map(|c| c.req.id)
            .collect();
        assert_eq!(failed.len(), 2);
        assert!(failed.contains(&2) && failed.contains(&4));
        assert_eq!(d.injected(), 2);
    }

    #[test]
    fn every_nth_is_periodic() {
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), FaultPlan::EveryNth(3));
        for i in 0..9u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        let errors = out.iter().filter(|c| c.status == IoStatus::Error).count();
        assert_eq!(errors, 3);
    }

    #[test]
    fn none_plan_never_fails() {
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), FaultPlan::None);
        for i in 0..10u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert!(out.iter().all(|c| c.status == IoStatus::Ok));
    }

    /// Which completion indices fail under `plan` for `n` single-page reads.
    fn failure_pattern(d: &mut Faulty<crate::Ssd>, n: u64) -> Vec<u64> {
        for i in 0..n {
            d.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(d, SimTime::ZERO, &mut out);
        out.iter()
            .filter(|c| c.status == IoStatus::Error)
            .map(|c| c.req.id)
            .collect()
    }

    #[test]
    fn reset_state_restarts_the_fault_phase() {
        // Regression: reset_state used to forward to the inner device but
        // keep `completed`, so EveryNth fired at shifted positions after a
        // reset.
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), FaultPlan::EveryNth(3));
        let first = failure_pattern(&mut d, 10);
        assert_eq!(d.injected(), first.len() as u64);
        d.reset_state();
        assert_eq!(d.injected(), 0, "reset must clear the injected counter");
        let second = failure_pattern(&mut d, 10);
        assert_eq!(
            first, second,
            "EveryNth must fire at the same positions after reset_state"
        );
    }

    #[test]
    fn random_plan_is_seed_deterministic() {
        let mk = || {
            Faulty::new(
                consumer_pcie_ssd(1 << 16, 1),
                FaultPlan::Random { p: 0.3, seed: 7 },
            )
        };
        let a = failure_pattern(&mut mk(), 64);
        let b = failure_pattern(&mut mk(), 64);
        assert_eq!(a, b, "same seed must fail the same completions");
        assert!(!a.is_empty(), "p=0.3 over 64 reads should fail some");
        assert!(a.len() < 64, "p=0.3 must not fail everything");
        let mut c = Faulty::new(
            consumer_pcie_ssd(1 << 16, 1),
            FaultPlan::Random { p: 0.3, seed: 8 },
        );
        let other = failure_pattern(&mut c, 64);
        assert_ne!(a, other, "a different seed should fail different reads");
    }

    #[test]
    fn random_plan_resets_with_state() {
        let mut d = Faulty::new(
            consumer_pcie_ssd(1 << 16, 1),
            FaultPlan::Random { p: 0.25, seed: 42 },
        );
        let first = failure_pattern(&mut d, 48);
        d.reset_state();
        let second = failure_pattern(&mut d, 48);
        assert_eq!(first, second, "random stream must restart on reset");
    }

    #[test]
    fn transient_faults_heal_after_k_attempts() {
        // p = 1.0: every offset is fault-prone; each fails twice, then heals.
        let plan = FaultPlan::Transient {
            p: 1.0,
            attempts: 2,
            seed: 5,
        };
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), plan);
        let mut statuses = Vec::new();
        for attempt in 0..4u64 {
            d.submit(SimTime::ZERO, IoRequest::page(attempt, 99));
            let mut out = Vec::new();
            drain_all(&mut d, SimTime::ZERO, &mut out);
            assert_eq!(out.len(), 1);
            statuses.push(out[0].status);
        }
        assert_eq!(
            statuses,
            vec![IoStatus::Error, IoStatus::Error, IoStatus::Ok, IoStatus::Ok],
            "first two attempts fail, retries succeed"
        );
    }

    #[test]
    fn transient_selection_is_offset_stable() {
        let plan = FaultPlan::Transient {
            p: 0.4,
            attempts: 1,
            seed: 21,
        };
        let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 1), plan.clone());
        let forward = failure_pattern(&mut d, 32);
        // Same offsets submitted in reverse order fail identically (by
        // offset, not by position in the arrival stream).
        let mut r = Faulty::new(consumer_pcie_ssd(1 << 16, 1), plan);
        for i in (0..32u64).rev() {
            r.submit(SimTime::ZERO, IoRequest::page(i, i));
        }
        let mut out = Vec::new();
        drain_all(&mut r, SimTime::ZERO, &mut out);
        let mut reversed: Vec<u64> = out
            .iter()
            .filter(|c| c.status == IoStatus::Error)
            .map(|c| c.req.offset)
            .collect();
        reversed.sort_unstable();
        let mut fwd_sorted = forward.clone();
        fwd_sorted.sort_unstable();
        assert_eq!(fwd_sorted, reversed);
    }

    #[test]
    fn tail_latency_stretches_a_fraction_of_completions() {
        let mk = |frac| {
            Faulty::new(consumer_pcie_ssd(1 << 16, 3), FaultPlan::None)
                .with_tail_latency(frac, 8.0, 17)
        };
        let run = |mut d: Faulty<crate::Ssd>| {
            for i in 0..64u64 {
                d.submit(SimTime::ZERO, IoRequest::page(i, i * 7 % (1 << 16)));
            }
            let mut out = Vec::new();
            drain_all(&mut d, SimTime::ZERO, &mut out);
            assert_eq!(out.len(), 64);
            assert_eq!(d.outstanding(), 0);
            let delayed = d.delayed();
            let max_lat = out
                .iter()
                .map(|c| c.latency().as_micros_f64())
                .fold(0.0f64, f64::max);
            (delayed, max_lat)
        };
        let (none_delayed, base_max) = run(mk(0.0));
        let (some_delayed, tail_max) = run(mk(0.25));
        assert_eq!(none_delayed, 0);
        assert!(
            (4..=28).contains(&(some_delayed as i64)),
            "~25% of 64 completions should be delayed: {some_delayed}"
        );
        assert!(
            tail_max > base_max * 4.0,
            "stretched tail should dominate the latency max: {base_max} vs {tail_max}"
        );
    }

    #[test]
    fn tail_latency_is_deterministic_and_ordered() {
        let run = || {
            let mut d = Faulty::new(consumer_pcie_ssd(1 << 16, 9), FaultPlan::None)
                .with_tail_latency(0.3, 5.0, 77);
            for i in 0..48u64 {
                d.submit(SimTime::ZERO, IoRequest::page(i, i * 13 % (1 << 16)));
            }
            let mut out = Vec::new();
            drain_all(&mut d, SimTime::ZERO, &mut out);
            out.iter()
                .map(|c| (c.req.id, c.completed.as_nanos()))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "tail injection must be byte-deterministic");
    }
}
