//! Striped multi-spindle array (RAID-0 style data layout, with an
//! optional parity-style degraded mode).
//!
//! The paper's third device class is an 8-spindle 15 000 RPM array: unlike a
//! single HDD, an array *does* reward deeper queues, because independent
//! random reads land on different spindles and are serviced concurrently —
//! but only up to roughly the spindle count, and the per-I/O latency still
//! carries seek + rotation. The model is simply `n` [`Hdd`] instances plus
//! a striping address map; queue-depth scaling and the AW-vs-GW calibration
//! asymmetry (Fig. 11) both emerge from that composition.
//!
//! **Degraded mode** (resilience extension): one spindle may be marked
//! failed ([`Raid::set_degraded`] or [`RaidConfig::degraded_spindle`]).
//! Reads whose stripe units land on the failed spindle are served by
//! *reconstruction*: the corresponding stripe units are read from every
//! surviving spindle and combined (parity-rebuild style), at a modeled
//! per-page XOR penalty — so the parent I/O still succeeds, visibly
//! slower, with [`IoCompletion::degraded`] set. The parent fails only if
//! a surviving spindle itself reports an error.

use crate::hdd::{Hdd, HddConfig};
use crate::io::{DeviceModel, IoCompletion, IoRequest, IoStatus};
use pioqo_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Array parameters: a spindle template plus geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaidConfig {
    /// Per-spindle drive model. `capacity_pages` here is the capacity of
    /// **one spindle**; the array exposes `n_spindles ×` that.
    pub spindle: HddConfig,
    /// Number of spindles.
    pub n_spindles: u32,
    /// Stripe unit in pages (consecutive pages per spindle before moving on).
    pub stripe_pages: u32,
    /// Spindle marked failed at construction (degraded mode); `None` for a
    /// healthy array. Requires `n_spindles >= 2`.
    pub degraded_spindle: Option<u32>,
    /// Per reconstructed page: XOR/recombine work added to a degraded
    /// read's completion time, on top of the surviving spindles' reads.
    pub reconstruct_overhead_us: f64,
    /// Model name for reports.
    pub name: String,
}

struct Parent {
    req: IoRequest,
    submitted: SimTime,
    remaining: u32,
    failed: bool,
    last_done: SimTime,
    /// Pages served by reconstruction (0 for a direct read).
    recon_pages: u32,
}

/// A simulated striped disk array. See the module docs.
pub struct Raid {
    cfg: RaidConfig,
    spindles: Vec<Hdd>,
    degraded: Option<u32>,
    degraded_reads: u64,
    /// sub-request id -> parent request id
    sub_parent: BTreeMap<u64, u64>,
    parents: BTreeMap<u64, Parent>,
    next_sub_id: u64,
    scratch: Vec<IoCompletion>,
}

impl Raid {
    /// Build an array from its configuration. Each spindle gets a distinct
    /// RNG seed derived from the template seed.
    pub fn new(cfg: RaidConfig) -> Self {
        assert!(
            cfg.spindle
                .capacity_pages
                .is_multiple_of(cfg.stripe_pages as u64),
            "per-spindle capacity ({} pages) must be a whole number of \
             stripe units ({} pages): the striped mapping would otherwise \
             address past a spindle's end",
            cfg.spindle.capacity_pages,
            cfg.stripe_pages
        );
        let spindles = (0..cfg.n_spindles)
            .map(|i| {
                let mut c = cfg.spindle.clone();
                c.seed = c.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
                c.name = format!("{}-spindle{}", cfg.name, i);
                Hdd::new(c)
            })
            .collect();
        let degraded = cfg.degraded_spindle;
        let mut raid = Raid {
            cfg,
            spindles,
            degraded: None,
            degraded_reads: 0,
            sub_parent: BTreeMap::new(),
            parents: BTreeMap::new(),
            next_sub_id: 0,
            scratch: Vec::new(),
        };
        raid.set_degraded(degraded);
        raid
    }

    /// The configuration this array was built with.
    pub fn config(&self) -> &RaidConfig {
        &self.cfg
    }

    /// Mark `spindle` failed (`None` to restore the full array). Reads on
    /// a failed spindle are served by reconstruction from the survivors.
    ///
    /// # Panics
    /// Panics if I/O is outstanding, the index is out of range, or the
    /// array has fewer than two spindles (nothing to reconstruct from).
    pub fn set_degraded(&mut self, spindle: Option<u32>) {
        assert!(
            self.parents.is_empty(),
            "cannot change degraded state with I/O outstanding"
        );
        if let Some(s) = spindle {
            assert!(s < self.cfg.n_spindles, "degraded spindle out of range");
            assert!(
                self.cfg.n_spindles >= 2,
                "degraded mode needs at least one surviving spindle"
            );
        }
        self.degraded = spindle;
    }

    /// The currently failed spindle, if any.
    pub fn degraded_spindle(&self) -> Option<u32> {
        self.degraded
    }

    /// Parent reads served by reconstruction so far.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// Map a logical page to (spindle index, spindle-local page).
    fn locate(&self, page: u64) -> (usize, u64) {
        let stripe = self.cfg.stripe_pages as u64;
        let n = self.cfg.n_spindles as u64;
        let s = page / stripe;
        let spindle = (s % n) as usize;
        let inner = (s / n) * stripe + page % stripe;
        (spindle, inner)
    }

    /// Split `req` into per-spindle contiguous sub-requests:
    /// (spindle, inner offset, len).
    fn split(&self, req: &IoRequest) -> Vec<(usize, u64, u32)> {
        let mut parts: Vec<(usize, u64, u32)> = Vec::new();
        for p in req.offset..req.end() {
            let (sp, inner) = self.locate(p);
            match parts.last_mut() {
                Some((lsp, loff, llen)) if *lsp == sp && *loff + *llen as u64 == inner => {
                    *llen += 1;
                }
                _ => parts.push((sp, inner, 1)),
            }
        }
        parts
    }
}

impl DeviceModel for Raid {
    fn page_size(&self) -> u32 {
        self.cfg.spindle.page_size
    }

    fn capacity_pages(&self) -> u64 {
        self.cfg.spindle.capacity_pages * self.cfg.n_spindles as u64
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        assert!(
            req.end() <= self.capacity_pages(),
            "I/O past end of device: {:?} capacity={}",
            req,
            self.capacity_pages()
        );
        let parts = self.split(&req);
        // Expand each part into physical spindle reads. A part on the
        // failed spindle becomes one read of the same stripe extent on
        // *every* surviving spindle (parity reconstruction); a part on a
        // healthy spindle stays a single direct read.
        let mut reads: Vec<(usize, u64, u32)> = Vec::with_capacity(parts.len());
        let mut recon_pages: u32 = 0;
        for (sp, inner, len) in parts {
            match self.degraded {
                Some(dead) if sp == dead as usize => {
                    recon_pages += len;
                    for s in 0..self.cfg.n_spindles as usize {
                        if s != sp {
                            reads.push((s, inner, len));
                        }
                    }
                }
                _ => reads.push((sp, inner, len)),
            }
        }
        if recon_pages > 0 {
            self.degraded_reads += 1;
        }
        self.parents.insert(
            req.id,
            Parent {
                req,
                submitted: now,
                remaining: reads.len() as u32,
                failed: false,
                last_done: now,
                recon_pages,
            },
        );
        for (sp, inner, len) in reads {
            let sid = self.next_sub_id;
            self.next_sub_id += 1;
            self.sub_parent.insert(sid, req.id);
            self.spindles[sp].submit(now, IoRequest::block(sid, inner, len));
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        self.spindles.iter().filter_map(|s| s.next_event()).min()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        self.scratch.clear();
        for sp in &mut self.spindles {
            sp.advance(now, &mut self.scratch);
        }
        // Sort sub-completions by time so parent completions are emitted in
        // chronological order regardless of spindle iteration order.
        self.scratch.sort_by_key(|c| c.completed);
        for sub in &self.scratch {
            let pid = self
                .sub_parent
                .remove(&sub.req.id)
                .expect("unknown sub-request");
            let parent = self.parents.get_mut(&pid).expect("orphan sub-request");
            parent.remaining -= 1;
            parent.failed |= sub.status == IoStatus::Error;
            parent.last_done = parent.last_done.max(sub.completed);
            if parent.remaining == 0 {
                let parent = self
                    .parents
                    .remove(&pid)
                    .expect("completed sub-request maps to a live parent request");
                let rebuild = SimDuration::from_micros_f64(
                    parent.recon_pages as f64 * self.cfg.reconstruct_overhead_us,
                );
                out.push(IoCompletion {
                    req: parent.req,
                    submitted: parent.submitted,
                    completed: parent.last_done + rebuild,
                    status: if parent.failed {
                        IoStatus::Error
                    } else {
                        IoStatus::Ok
                    },
                    degraded: parent.recon_pages > 0 && !parent.failed,
                });
            }
        }
    }

    fn channels(&self) -> u32 {
        // Each spindle is an independent actuator.
        self.spindles.iter().map(|s| s.channels()).sum()
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        self.spindles.iter().map(|s| s.channels_busy(now)).sum()
    }

    fn outstanding(&self) -> usize {
        self.parents.len()
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn reset_state(&mut self) {
        assert!(self.parents.is_empty(), "reset_state with I/O outstanding");
        for sp in &mut self.spindles {
            sp.reset_state();
        }
        // Degraded marking is configuration, not positional state: it
        // survives the reset. The per-run counter restarts.
        self.degraded_reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::drain_all;
    use pioqo_simkit::SimRng;

    fn spindle_cfg() -> HddConfig {
        HddConfig {
            page_size: 4096,
            capacity_pages: 1 << 19, // 2 GiB per spindle
            seq_bandwidth_mb_s: 180.0,
            track_to_track_ms: 0.2,
            max_seek_ms: 8.0,
            rpm: 15_000.0,
            random_overhead_us: 20.0,
            seq_overhead_us: 3.0,
            sstf: true,
            rpo_factor: 0.5,
            jitter: 0.0,
            seed: 11,
            name: "15k".into(),
        }
    }

    fn raid8() -> Raid {
        Raid::new(RaidConfig {
            spindle: spindle_cfg(),
            n_spindles: 8,
            stripe_pages: 16,
            degraded_spindle: None,
            reconstruct_overhead_us: 10.0,
            name: "raid8-test".into(),
        })
    }

    #[test]
    fn locate_round_robins_stripes() {
        let r = raid8();
        assert_eq!(r.locate(0), (0, 0));
        assert_eq!(r.locate(15), (0, 15));
        assert_eq!(r.locate(16), (1, 0));
        assert_eq!(r.locate(16 * 8), (0, 16));
        assert_eq!(r.locate(16 * 8 + 3), (0, 19));
    }

    #[test]
    fn split_covers_request_exactly() {
        let r = raid8();
        // 40 pages starting mid-stripe: crosses three stripe units.
        let parts = r.split(&IoRequest::block(0, 10, 40));
        let total: u32 = parts.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 40);
        // Parts land on consecutive spindles 0,1,2,3.
        let spindles: Vec<_> = parts.iter().map(|&(s, _, _)| s).collect();
        assert_eq!(spindles, vec![0, 1, 2, 3]);
    }

    /// Random 4 KiB reads at queue depth `qd`; returns IOPS.
    fn random_iops(qd: usize, n: usize) -> f64 {
        let mut d = raid8();
        let cap = d.capacity_pages();
        let mut rng = SimRng::seeded(3);
        let offs: Vec<u64> = (0..n).map(|_| rng.below(cap)).collect();
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next = 0usize;
        while next < qd.min(n) {
            d.submit(now, IoRequest::page(next as u64, offs[next]));
            next += 1;
        }
        while d.outstanding() > 0 {
            let t = d.next_event().expect("busy");
            let before = out.len();
            d.advance(t, &mut out);
            now = t;
            for _ in before..out.len() {
                if next < n {
                    d.submit(now, IoRequest::page(next as u64, offs[next]));
                    next += 1;
                }
            }
        }
        pioqo_simkit::stats::iops(n as u64, now - SimTime::ZERO)
    }

    #[test]
    fn queue_depth_scales_towards_spindle_count() {
        let i1 = random_iops(1, 400);
        let i8 = random_iops(8, 1600);
        let ratio = i8 / i1;
        // 8 spindles: 8 outstanding should approach (but not reach) 8x;
        // balls-into-bins collisions and SSTF make ~4-7x typical.
        assert!(ratio > 3.0, "raid should scale with qd: {ratio}");
        assert!(ratio <= 8.5, "cannot beat spindle count: {ratio}");
    }

    #[test]
    fn deeper_than_spindles_keeps_helping_but_sublinearly() {
        // Beyond the spindle count the array still gains — per-spindle SSTF
        // shortens seeks as local queues deepen (the paper's Fig. 12 RAID
        // curves keep falling through qd 32) — but far below linear.
        let i8 = random_iops(8, 1600);
        let i32 = random_iops(32, 1600);
        assert!(i32 > i8, "deeper queue should not hurt: {i8} vs {i32}");
        assert!(
            i32 < i8 * 3.0,
            "qd beyond spindle count should be sublinear: {i8} vs {i32}"
        );
    }

    #[test]
    fn block_read_completes_once_with_max_time() {
        let mut d = raid8();
        d.submit(SimTime::ZERO, IoRequest::block(7, 0, 128));
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].req.id, 7);
        assert_eq!(out[0].status, IoStatus::Ok);
        assert_eq!(d.outstanding(), 0);
    }

    /// Mean latency (µs) of `n` seeded random single-page reads at qd 1,
    /// all aimed at pages that live on spindle 3 (stripe index ≡ 3 mod 8).
    fn mean_spindle3_latency(d: &mut Raid, n: usize, seed: u64) -> f64 {
        let stripe_pages = 16u64;
        let stripes = d.capacity_pages() / stripe_pages;
        let mut rng = SimRng::seeded(seed);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let stripe = rng.below(stripes / 8) * 8 + 3;
            let offset = stripe * stripe_pages + rng.below(stripe_pages);
            d.submit(now, IoRequest::page(i as u64, offset));
            now = drain_all(d, now, &mut out);
        }
        assert_eq!(out.len(), n);
        out.iter().map(|c| c.latency().as_micros_f64()).sum::<f64>() / n as f64
    }

    #[test]
    fn degraded_read_on_failed_spindle_succeeds_with_flag() {
        let mut d = raid8();
        d.set_degraded(Some(0));
        // Page 0 lives on spindle 0 (failed): must be reconstructed.
        d.submit(SimTime::ZERO, IoRequest::page(1, 0));
        // Page 16 lives on spindle 1 (healthy): direct read.
        d.submit(SimTime::ZERO, IoRequest::page(2, 16));
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        let rebuilt = out.iter().find(|c| c.req.id == 1).expect("id 1 completes");
        let direct = out.iter().find(|c| c.req.id == 2).expect("id 2 completes");
        assert_eq!(rebuilt.status, IoStatus::Ok);
        assert!(rebuilt.degraded, "failed-spindle read must be marked");
        assert_eq!(direct.status, IoStatus::Ok);
        assert!(!direct.degraded);
        assert_eq!(d.degraded_reads(), 1);
    }

    #[test]
    fn degraded_array_is_measurably_slower() {
        // Every read targets spindle 3's pages: with the array degraded each
        // one is reconstructed as max-of-seven survivor reads plus the rebuild
        // overhead, which must clearly exceed a single spindle's latency.
        let mut healthy = raid8();
        let healthy_lat = mean_spindle3_latency(&mut healthy, 100, 5);
        let mut degraded = raid8();
        degraded.set_degraded(Some(3));
        let degraded_lat = mean_spindle3_latency(&mut degraded, 100, 5);
        assert_eq!(degraded.degraded_reads(), 100, "all reads reconstruct");
        assert_eq!(healthy.degraded_reads(), 0);
        assert!(
            degraded_lat > healthy_lat * 1.2,
            "reconstruction (fan-out to 7 survivors + rebuild) must cost \
             latency: healthy {healthy_lat} vs degraded {degraded_lat}"
        );
    }

    #[test]
    fn degraded_sequential_block_spans_failed_spindle() {
        let mut d = raid8();
        d.set_degraded(Some(2));
        // 128 pages = one full stripe across all 8 spindles.
        d.submit(SimTime::ZERO, IoRequest::block(9, 0, 128));
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].status, IoStatus::Ok);
        assert!(out[0].degraded);
        assert_eq!(d.outstanding(), 0);
    }

    #[test]
    fn sequential_bandwidth_aggregates_spindles() {
        let mut d = raid8();
        // 32 MiB sequential in stripe-aligned 128-page blocks.
        for i in 0..64u64 {
            d.submit(SimTime::ZERO, IoRequest::block(i, i * 128, 128));
        }
        let mut out = Vec::new();
        let end = drain_all(&mut d, SimTime::ZERO, &mut out);
        let mbps = pioqo_simkit::stats::mb_per_sec(64 * 128 * 4096, end - SimTime::ZERO);
        // Eight 180 MB/s spindles: should exceed a single spindle clearly.
        assert!(mbps > 300.0, "striped sequential too slow: {mbps}");
    }
}
