//! Flash solid-state-drive model.
//!
//! The defining property the paper exploits: an SSD is internally a *bank of
//! parallel servers* (channels/dies/planes), so random-read throughput grows
//! nearly linearly with I/O queue depth up to the device's internal
//! parallelism, then flattens at the host-interface limit. This model has:
//!
//! * `n_channels` independent flash channels (page → channel by striping),
//!   each a FIFO server with the flash array read latency;
//! * a shared host bus that serializes page transfers at the advertised
//!   sequential bandwidth (so sequential large-block reads hit that number);
//! * a host-interface completion cap (advertised max IOPS);
//! * an FTL mapping cache: random reads over a wide *band* miss the
//!   mapping cache and pay an extra lookup — the mechanism behind the
//!   paper's observation that band size still matters on SSD (Fig. 7), and
//!   that the effect fades at high queue depth (latency hides under
//!   parallelism once throughput is interface-bound).
//!
//! Because channels and the bus are FIFO, every service time is computable
//! at submit time; completions are queued on an internal calendar.

use crate::io::{DeviceModel, IoCompletion, IoRequest};
use pioqo_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Flash device parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Page size in bytes.
    pub page_size: u32,
    /// Capacity in pages.
    pub capacity_pages: u64,
    /// Internal parallel channels (the "maximum beneficial queue depth").
    pub n_channels: u32,
    /// Flash array read latency per page, µs.
    pub flash_read_us: f64,
    /// Host bus bandwidth (= advertised sequential read rate), MB/s.
    pub bus_bandwidth_mb_s: f64,
    /// Host interface completion cap (advertised random-read IOPS).
    pub max_iops: f64,
    /// Fixed per-request submission overhead (driver + firmware), µs.
    pub per_io_overhead_us: f64,
    /// Striping unit mapping pages to channels, in pages.
    pub stripe_pages: u32,
    /// FTL mapping-cache region size, pages. A "region" is the unit of
    /// mapping-table locality.
    pub map_region_pages: u64,
    /// Number of mapping regions the FTL cache holds.
    pub map_cache_regions: usize,
    /// Extra latency on a mapping-cache miss, µs.
    pub map_miss_us: f64,
    /// Multiplicative service-time noise.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
    /// Model name for reports.
    pub name: String,
}

/// A simulated flash SSD. See the module docs.
pub struct Ssd {
    cfg: SsdConfig,
    rng: SimRng,
    /// Per-channel time at which the channel is next free.
    channel_free: Vec<SimTime>,
    /// Time at which the shared host bus is next free.
    bus_free: SimTime,
    /// Earliest time the interface may deliver the next completion.
    iface_next: SimTime,
    /// FTL mapping cache: most-recently-used region ids, MRU at the back.
    map_cache: Vec<u64>,
    /// Offset that would continue the current sequential stream (device
    /// readahead detection).
    seq_next: u64,
    /// Internal completion calendar.
    done: EventQueue<(IoRequest, SimTime)>,
    /// Scratch buffer reused by `advance` to drain same-instant cohorts.
    batch: Vec<(IoRequest, SimTime)>,
    outstanding: usize,
}

impl Ssd {
    /// Build a drive from its configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let seed = cfg.seed;
        let nch = cfg.n_channels as usize;
        let cache = cfg.map_cache_regions;
        Ssd {
            cfg,
            rng: SimRng::seeded(seed),
            channel_free: vec![SimTime::ZERO; nch],
            bus_free: SimTime::ZERO,
            iface_next: SimTime::ZERO,
            map_cache: Vec::with_capacity(cache),
            seq_next: u64::MAX,
            done: EventQueue::new(),
            batch: Vec::new(),
            outstanding: 0,
        }
    }

    /// The configuration this drive was built with.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    fn channel_of(&self, page: u64) -> usize {
        ((page / self.cfg.stripe_pages as u64) % self.cfg.n_channels as u64) as usize
    }

    fn page_transfer(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.cfg.page_size as f64 / self.cfg.bus_bandwidth_mb_s)
    }

    /// Touch the FTL mapping cache for `page`; returns the added latency.
    fn map_lookup_us(&mut self, page: u64) -> f64 {
        if self.cfg.map_cache_regions == 0 {
            return 0.0;
        }
        let region = page / self.cfg.map_region_pages;
        if let Some(pos) = self.map_cache.iter().position(|&r| r == region) {
            // Hit: move to MRU position.
            self.map_cache.remove(pos);
            self.map_cache.push(region);
            0.0
        } else {
            if self.map_cache.len() == self.cfg.map_cache_regions {
                self.map_cache.remove(0);
            }
            self.map_cache.push(region);
            self.cfg.map_miss_us
        }
    }
}

impl DeviceModel for Ssd {
    fn page_size(&self) -> u32 {
        self.cfg.page_size
    }

    fn capacity_pages(&self) -> u64 {
        self.cfg.capacity_pages
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        assert!(
            req.end() <= self.cfg.capacity_pages,
            "I/O past end of device: {:?} capacity={}",
            req,
            self.cfg.capacity_pages
        );
        let arrive = now + SimDuration::from_micros_f64(self.cfg.per_io_overhead_us);
        let transfer = self.page_transfer();
        // Sequential-stream detection: firmware readahead has already pulled
        // a continuing stream's pages into the device cache, so they skip
        // the flash-array latency and stream at bus rate (this is why "band
        // size 1" means sequential I/O in the DTT model).
        let sequential = req.offset == self.seq_next;
        self.seq_next = req.end();
        let mut req_done = arrive;
        for p in req.offset..req.end() {
            let ch = self.channel_of(p);
            let miss_us = self.map_lookup_us(p);
            let flash_us = if sequential {
                0.0
            } else {
                (self.cfg.flash_read_us + miss_us) * self.rng.jitter(self.cfg.jitter)
            };
            let start = self.channel_free[ch].max(arrive);
            let flash_done = start + SimDuration::from_micros_f64(flash_us);
            self.channel_free[ch] = flash_done;
            // Page data crosses the shared host bus after the flash read.
            let bus_start = self.bus_free.max(flash_done);
            let bus_done = bus_start + transfer;
            self.bus_free = bus_done;
            req_done = req_done.max(bus_done);
        }
        // Host-interface completion pacing (advertised IOPS cap).
        if self.cfg.max_iops > 0.0 {
            let gap = SimDuration::from_micros_f64(1_000_000.0 / self.cfg.max_iops);
            req_done = req_done.max(self.iface_next);
            self.iface_next = req_done + gap;
        }
        self.done.schedule(req_done.max(now), (req, now));
        self.outstanding += 1;
    }

    fn next_event(&self) -> Option<SimTime> {
        self.done.peek_time()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        // Completions pile up on shared instants (interface pacing rounds
        // same-batch finish times together), so drain each cohort in one
        // heap pass instead of a peek/pop pair per event.
        while self.done.peek_time().is_some_and(|t| t <= now) {
            self.batch.clear();
            if let Some(t) = self.done.pop_batch(&mut self.batch) {
                for (req, submitted) in self.batch.drain(..) {
                    out.push(IoCompletion::ok(req, submitted, t));
                    self.outstanding -= 1;
                }
            }
        }
    }

    fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn reset_state(&mut self) {
        assert!(self.outstanding == 0, "reset_state with I/O outstanding");
        self.map_cache.clear();
        self.seq_next = u64::MAX;
        // Let the pipeline clocks stay where they are: they are in the past
        // relative to any future submission, so they no longer constrain.
    }

    fn channels(&self) -> u32 {
        self.cfg.n_channels
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        // A channel is busy while its flash pipeline reaches past `now`;
        // channel_free clocks only move forward, so this is an exact
        // instantaneous in-flight depth across the internal channels.
        self.channel_free.iter().filter(|&&free| free > now).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::drain_all;

    fn test_cfg() -> SsdConfig {
        SsdConfig {
            page_size: 4096,
            capacity_pages: 1 << 22, // 16 GiB
            n_channels: 32,
            flash_read_us: 62.0,
            bus_bandwidth_mb_s: 1500.0,
            max_iops: 230_000.0,
            per_io_overhead_us: 8.0,
            stripe_pages: 1,
            map_region_pages: 1 << 14, // 64 MiB regions
            map_cache_regions: 16,
            map_miss_us: 18.0,
            jitter: 0.0,
            seed: 1,
            name: "ssd-test".into(),
        }
    }

    /// Run random single-page reads at a fixed queue depth; returns MB/s.
    fn random_throughput(qd: usize, n: usize) -> f64 {
        let mut d = Ssd::new(test_cfg());
        let mut rng = SimRng::seeded(3);
        let offs: Vec<u64> = (0..n).map(|_| rng.below(1 << 22)).collect();
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next = 0usize;
        while next < qd.min(n) {
            d.submit(now, IoRequest::page(next as u64, offs[next]));
            next += 1;
        }
        while d.outstanding() > 0 {
            let t = d.next_event().expect("busy");
            let before = out.len();
            d.advance(t, &mut out);
            now = t;
            for _ in before..out.len() {
                if next < n {
                    d.submit(now, IoRequest::page(next as u64, offs[next]));
                    next += 1;
                }
            }
        }
        pioqo_simkit::stats::mb_per_sec(n as u64 * 4096, now - SimTime::ZERO)
    }

    #[test]
    fn sequential_hits_bus_bandwidth() {
        let mut d = Ssd::new(test_cfg());
        // 16 MiB in 64-page blocks.
        for i in 0..64u64 {
            d.submit(SimTime::ZERO, IoRequest::block(i, i * 64, 64));
        }
        let mut out = Vec::new();
        let end = drain_all(&mut d, SimTime::ZERO, &mut out);
        let mbps = pioqo_simkit::stats::mb_per_sec(64 * 64 * 4096, end - SimTime::ZERO);
        assert!(
            (1200.0..=1550.0).contains(&mbps),
            "sequential bandwidth off: {mbps} MB/s"
        );
    }

    #[test]
    fn random_throughput_scales_with_queue_depth() {
        let t1 = random_throughput(1, 2000);
        let t4 = random_throughput(4, 2000);
        let t32 = random_throughput(32, 4000);
        assert!(t4 > 3.0 * t1, "qd4 should be ~4x qd1: {t1} vs {t4}");
        assert!(t32 > 10.0 * t1, "qd32 should be >>qd1: {t1} vs {t32}");
    }

    #[test]
    fn qd32_random_is_large_fraction_of_sequential() {
        // Fig. 1: ~51.7% on the paper's SSD. Accept a generous band.
        let t32 = random_throughput(32, 8000);
        let frac = t32 / 1500.0;
        assert!(
            (0.30..=0.75).contains(&frac),
            "qd32 random fraction of sequential: {frac}"
        );
    }

    #[test]
    fn interface_cap_limits_iops() {
        // With 32 channels and 90 µs flash, raw parallelism exceeds the
        // 230K IOPS cap, so the cap must be binding at qd 32.
        let t32 = random_throughput(32, 8000);
        let iops = t32 * 1_000_000.0 / 4096.0;
        assert!(iops <= 235_000.0, "exceeded interface cap: {iops}");
        assert!(iops >= 120_000.0, "far below expected cap: {iops}");
    }

    #[test]
    fn narrow_band_is_cheaper_than_wide_band() {
        // Random reads confined to one mapping region vs spread over the
        // whole device, both at qd 1 (latency visible).
        let lat = |band: u64| {
            let mut d = Ssd::new(test_cfg());
            let mut rng = SimRng::seeded(5);
            let mut out = Vec::new();
            let mut now = SimTime::ZERO;
            for i in 0..500u64 {
                d.submit(now, IoRequest::page(i, rng.below(band)));
                now = drain_all(&mut d, now, &mut out);
            }
            now.as_micros_f64() / 500.0
        };
        let narrow = lat(1 << 13); // inside one 64 MiB region
        let wide = lat(1 << 22); // whole device
        assert!(
            wide > narrow * 1.05,
            "band size should matter: narrow={narrow} wide={wide}"
        );
    }

    #[test]
    fn sequential_single_pages_benefit_from_readahead() {
        // A continuing stream skips the flash-array latency (firmware
        // readahead), so qd-1 sequential page reads are far faster than
        // qd-1 random ones — this is what makes DTT(band=1) "sequential".
        let mut d = Ssd::new(test_cfg());
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for i in 0..500u64 {
            d.submit(now, IoRequest::page(i, i));
            now = drain_all(&mut d, now, &mut out);
        }
        let seq_us = now.as_micros_f64() / 500.0;

        let mut d = Ssd::new(test_cfg());
        let mut rng = SimRng::seeded(4);
        let mut now2 = SimTime::ZERO;
        out.clear();
        for i in 0..500u64 {
            d.submit(now2, IoRequest::page(i, rng.below(1 << 22)));
            now2 = drain_all(&mut d, now2, &mut out);
        }
        let rand_us = now2.as_micros_f64() / 500.0;
        assert!(
            seq_us < rand_us / 3.0,
            "sequential {seq_us} should be far below random {rand_us}"
        );
    }

    #[test]
    fn broken_stream_repays_flash_latency() {
        let t_of = |offsets: &[u64]| {
            let mut d = Ssd::new(test_cfg());
            let mut out = Vec::new();
            let mut now = SimTime::ZERO;
            for (i, &o) in offsets.iter().enumerate() {
                d.submit(now, IoRequest::page(i as u64, o));
                now = drain_all(&mut d, now, &mut out);
            }
            now.as_micros_f64()
        };
        // Stream 0..8 vs the same pages with a jump in the middle.
        let smooth = t_of(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let broken = t_of(&[0, 1, 2, 3, 1000, 4, 5, 6]);
        assert!(broken > smooth + 50.0, "{broken} vs {smooth}");
    }

    #[test]
    fn completions_never_precede_submissions() {
        let mut d = Ssd::new(test_cfg());
        let t0 = SimTime::from_micros(100);
        d.submit(t0, IoRequest::page(0, 0));
        let mut out = Vec::new();
        drain_all(&mut d, t0, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].completed > out[0].submitted);
    }

    #[test]
    #[should_panic(expected = "past end of device")]
    fn rejects_out_of_range() {
        let mut d = Ssd::new(test_cfg());
        d.submit(SimTime::ZERO, IoRequest::block(0, (1 << 22) - 1, 2));
    }
}
