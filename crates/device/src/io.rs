//! I/O request/completion types and the [`DeviceModel`] actor trait.

use pioqo_simkit::SimTime;
use serde::{Deserialize, Serialize};

/// Direction of an I/O request.
///
/// Reads and writes travel through the same queueing/band machinery; the
/// distinction matters to callers (physical accounting, crash semantics:
/// in-flight writes at a crash may be torn, in-flight reads are merely
/// aborted) rather than to the service-time models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IoKind {
    /// Transfer pages from media to the host.
    Read,
    /// Transfer pages from the host to media.
    Write,
}

/// An I/O request addressed in whole pages.
///
/// `offset` and `len` are in *pages* (the device's page size is fixed per
/// device). The paper's workloads are read-only; the write path exists for
/// the crash-consistency extension (WAL + dirty-page writeback) and shares
/// the read path's queueing and service-time model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Caller-assigned identifier, echoed in the completion.
    pub id: u64,
    /// First page of the transfer.
    pub offset: u64,
    /// Number of consecutive pages to transfer (>= 1).
    pub len: u32,
    /// Read or write.
    pub kind: IoKind,
}

impl IoRequest {
    /// A single-page read.
    pub fn page(id: u64, offset: u64) -> Self {
        IoRequest {
            id,
            offset,
            len: 1,
            kind: IoKind::Read,
        }
    }

    /// A multi-page (block) read.
    pub fn block(id: u64, offset: u64, len: u32) -> Self {
        debug_assert!(len >= 1);
        IoRequest {
            id,
            offset,
            len,
            kind: IoKind::Read,
        }
    }

    /// A single-page write.
    pub fn write_page(id: u64, offset: u64) -> Self {
        IoRequest {
            id,
            offset,
            len: 1,
            kind: IoKind::Write,
        }
    }

    /// A multi-page (block) write.
    pub fn write_block(id: u64, offset: u64, len: u32) -> Self {
        debug_assert!(len >= 1);
        IoRequest {
            id,
            offset,
            len,
            kind: IoKind::Write,
        }
    }

    /// True for write requests.
    pub fn is_write(&self) -> bool {
        self.kind == IoKind::Write
    }

    /// One past the last page touched.
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }
}

/// Outcome of an I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoStatus {
    /// The read succeeded.
    Ok,
    /// The device reported a media/transport error (only produced by the
    /// fault-injection wrapper; the base models never fail).
    Error,
}

/// A finished I/O, delivered by [`DeviceModel::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// The originating request.
    pub req: IoRequest,
    /// When the request entered the device.
    pub submitted: SimTime,
    /// When the device finished it.
    pub completed: SimTime,
    /// Success or failure.
    pub status: IoStatus,
    /// True when the read was served by redundancy reconstruction (a RAID
    /// array with a failed spindle) rather than directly from media. The
    /// data is correct; the latency carries the reconstruction penalty.
    pub degraded: bool,
}

impl IoCompletion {
    /// A successful direct completion (the common case for base models).
    pub fn ok(req: IoRequest, submitted: SimTime, completed: SimTime) -> Self {
        IoCompletion {
            req,
            submitted,
            completed,
            status: IoStatus::Ok,
            degraded: false,
        }
    }

    /// Device-observed latency of this I/O.
    pub fn latency(&self) -> pioqo_simkit::SimDuration {
        self.completed.since(self.submitted)
    }
}

/// A storage device as a discrete-event actor.
///
/// The engine drives devices with three calls:
/// 1. [`submit`](DeviceModel::submit) hands over a request at the current
///    virtual time (the device may start serving it immediately);
/// 2. [`next_event`](DeviceModel::next_event) reports when the device next
///    changes state (its earliest internal completion), or `None` if idle;
/// 3. [`advance`](DeviceModel::advance) moves the device's internal clock to
///    `now` and appends every completion with `completed <= now` to `out`.
///
/// Determinism contract: identical submit sequences produce identical
/// completion sequences (models use their own seeded RNG for jitter).
pub trait DeviceModel {
    /// Page size in bytes (uniform across the device).
    fn page_size(&self) -> u32;

    /// Total device capacity in pages.
    fn capacity_pages(&self) -> u64;

    /// Hand a request to the device at virtual time `now`.
    ///
    /// # Panics
    /// Panics if the request reaches past the end of the device.
    fn submit(&mut self, now: SimTime, req: IoRequest);

    /// Earliest future time at which [`advance`](DeviceModel::advance)
    /// would deliver a completion, or `None` when nothing is outstanding.
    fn next_event(&self) -> Option<SimTime>;

    /// Advance to `now`, appending all completions due by `now` to `out`.
    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>);

    /// Number of requests submitted but not yet completed.
    fn outstanding(&self) -> usize;

    /// Short human-readable model name ("hdd-7200", "ssd-pcie", ...).
    fn name(&self) -> &str;

    /// Reset transient positional state (head position, sequential-detector,
    /// map cache) without touching statistics-free configuration. The
    /// calibrator calls this between calibration points so points don't
    /// leak locality into each other.
    fn reset_state(&mut self);

    /// True once the device has halted after an injected crash (see the
    /// `Crashable` wrapper). Base models never crash; after a crash the
    /// device accepts no further work and reports zero outstanding I/Os so
    /// event loops can detect the halt instead of spinning forever.
    fn crashed(&self) -> bool {
        false
    }

    /// Number of independent service channels the device exposes.
    /// Single-actuator models report 1; an SSD reports its internal
    /// channel count, a RAID array the sum over its spindles. Used by the
    /// metrics layer to express utilization as busy/total.
    fn channels(&self) -> u32 {
        1
    }

    /// Channels still serving work at virtual time `now` — the
    /// instantaneous parallel-I/O depth the metrics layer samples into the
    /// per-device utilization series. The default collapses to "anything
    /// outstanding?", which is exact for single-channel models.
    fn channels_busy(&self, now: SimTime) -> u32 {
        let _ = now;
        u32::from(self.outstanding() > 0)
    }
}

/// A boxed device is itself a device — lets generic drivers (e.g. the
/// calibrator's per-point device factories) accept `Box<dyn DeviceModel>`
/// from preset constructors without unwrapping.
impl DeviceModel for Box<dyn DeviceModel> {
    fn page_size(&self) -> u32 {
        (**self).page_size()
    }

    fn capacity_pages(&self) -> u64 {
        (**self).capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        (**self).submit(now, req)
    }

    fn next_event(&self) -> Option<SimTime> {
        (**self).next_event()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        (**self).advance(now, out)
    }

    fn outstanding(&self) -> usize {
        (**self).outstanding()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn reset_state(&mut self) {
        (**self).reset_state()
    }

    fn crashed(&self) -> bool {
        (**self).crashed()
    }

    fn channels(&self) -> u32 {
        (**self).channels()
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        (**self).channels_busy(now)
    }
}

/// Convenience: drain *all* remaining completions from a device by
/// repeatedly advancing to its next event. Returns the time of the last
/// completion (or `now` if none were outstanding).
pub fn drain_all(dev: &mut dyn DeviceModel, now: SimTime, out: &mut Vec<IoCompletion>) -> SimTime {
    let mut t = now;
    while let Some(next) = dev.next_event() {
        t = next;
        dev.advance(t, out);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let p = IoRequest::page(1, 10);
        assert_eq!(p.len, 1);
        assert_eq!(p.end(), 11);
        assert!(!p.is_write());
        let b = IoRequest::block(2, 10, 16);
        assert_eq!(b.end(), 26);
        assert_eq!(b.kind, IoKind::Read);
    }

    #[test]
    fn write_constructors() {
        let w = IoRequest::write_page(3, 7);
        assert!(w.is_write());
        assert_eq!(w.len, 1);
        let wb = IoRequest::write_block(4, 7, 8);
        assert!(wb.is_write());
        assert_eq!(wb.end(), 15);
    }

    #[test]
    fn completion_latency() {
        let c = IoCompletion::ok(
            IoRequest::page(0, 0),
            SimTime::from_micros(10),
            SimTime::from_micros(110),
        );
        assert_eq!(c.latency().as_micros_f64(), 100.0);
        assert!(!c.degraded);
    }
}
