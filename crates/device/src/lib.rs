//! # pioqo-device — storage device models
//!
//! The hardware substrate of the reproduction: discrete-event simulations of
//! the three device classes the paper evaluates, all behind one
//! [`DeviceModel`] trait:
//!
//! * [`Hdd`] — single 7200 RPM spindle: seek curve, rotational latency,
//!   SSTF/NCQ reordering. Queue depth barely helps (Fig. 1).
//! * [`Ssd`] — consumer PCIe flash: parallel channels, shared host bus,
//!   interface IOPS cap, FTL mapping-cache band sensitivity. Queue depth
//!   helps enormously, up to the internal parallelism (Fig. 1, Fig. 7).
//! * [`Raid`] — striped array of 15K spindles: queue depth helps up to
//!   the spindle count (Figs. 11, 12).
//!
//! Plus [`Traced`] (queue-depth/latency profiling), [`Faulty`] (error
//! injection), and [`real`] — a real-file thread-pool backend for running
//! the calibration against actual hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod background;
pub mod crash;
pub mod fault;
pub mod hdd;
pub mod io;
pub mod media;
pub mod presets;
pub mod raid;
pub mod real;
pub mod ssd;
pub mod trace;

pub use background::WithBackgroundLoad;
pub use crash::{CrashPlan, CrashReport, Crashable};
pub use fault::{FaultPlan, Faulty};
pub use hdd::{Hdd, HddConfig};
pub use io::{drain_all, DeviceModel, IoCompletion, IoKind, IoRequest, IoStatus};
pub use media::MediaStore;
pub use raid::{Raid, RaidConfig};
pub use ssd::{Ssd, SsdConfig};
pub use trace::Traced;
