//! Background-load wrapper: concurrent-query interference at the device.
//!
//! The paper defers concurrency to future work (§4.3: "when multiple
//! queries are running on the system concurrently, the optimizer needs to
//! pass a lower queue depth number to the QDTT model"). To study that
//! policy we need *interference*: [`WithBackgroundLoad`] wraps a device and
//! keeps `streams × per_stream_qd` random single-page reads of its own in
//! flight — each stream behaves like a serial index scan from another
//! query (complete one read, immediately issue the next). Foreground
//! callers see only their own completions; the background's I/Os compete
//! for the same channels/spindles, so the foreground's *effective* queue
//! depth budget shrinks exactly the way §4.3 anticipates.

use crate::io::{DeviceModel, IoCompletion, IoRequest};
use pioqo_simkit::{SimRng, SimTime};

/// Background request ids live in the top half of the id space so they can
/// never collide with foreground ids (contexts count up from 0).
const BG_ID_BASE: u64 = 1 << 63;

/// A [`DeviceModel`] carrying synthetic concurrent-query load.
pub struct WithBackgroundLoad<D> {
    inner: D,
    streams: u32,
    per_stream_qd: u32,
    rng: SimRng,
    next_bg: u64,
    started: bool,
    bg_outstanding: usize,
    bg_completed: u64,
    scratch: Vec<IoCompletion>,
}

impl<D: DeviceModel> WithBackgroundLoad<D> {
    /// Wrap `inner` with `streams` background readers, each sustaining
    /// `per_stream_qd` outstanding random page reads (1 mimics a serial
    /// index scan per stream).
    pub fn new(inner: D, streams: u32, per_stream_qd: u32, seed: u64) -> Self {
        WithBackgroundLoad {
            inner,
            streams,
            per_stream_qd: per_stream_qd.max(1),
            rng: SimRng::seeded(seed),
            next_bg: BG_ID_BASE,
            started: false,
            bg_outstanding: 0,
            bg_completed: 0,
            scratch: Vec::new(),
        }
    }

    /// Background reads completed so far (test/report hook).
    pub fn background_completed(&self) -> u64 {
        self.bg_completed
    }

    /// The foreground-visible queue depth the background leaves free, as a
    /// naive budget heuristic: `max(1, beneficial / (streams + 1))`.
    pub fn fair_share_of(&self, beneficial_qd: u32) -> u32 {
        (beneficial_qd / (self.streams + 1)).max(1)
    }

    fn submit_bg(&mut self, now: SimTime) {
        let page = self.rng.below(self.inner.capacity_pages());
        let id = self.next_bg;
        self.next_bg += 1;
        self.bg_outstanding += 1;
        self.inner.submit(now, IoRequest::page(id, page));
    }

    fn ensure_started(&mut self, now: SimTime) {
        if !self.started {
            self.started = true;
            for _ in 0..self.streams * self.per_stream_qd {
                self.submit_bg(now);
            }
        }
    }
}

impl<D: DeviceModel> DeviceModel for WithBackgroundLoad<D> {
    fn page_size(&self) -> u32 {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        assert!(req.id < BG_ID_BASE, "foreground ids must stay below 2^63");
        self.ensure_started(now);
        self.inner.submit(now, req);
    }

    fn next_event(&self) -> Option<SimTime> {
        self.inner.next_event()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        self.ensure_started(now);
        self.scratch.clear();
        self.inner.advance(now, &mut self.scratch);
        let mut completions = std::mem::take(&mut self.scratch);
        for c in completions.drain(..) {
            if c.req.id >= BG_ID_BASE {
                // A background stream finished a read: issue its next one
                // immediately (closed loop, like a blocked query thread).
                self.bg_outstanding -= 1;
                self.bg_completed += 1;
                self.submit_bg(now);
            } else {
                out.push(c);
            }
        }
        self.scratch = completions;
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding() - self.bg_outstanding
    }

    fn channels(&self) -> u32 {
        self.inner.channels()
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        self.inner.channels_busy(now)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset_state(&mut self) {
        // Background I/O is perpetual; only forward when truly idle.
        assert!(
            self.inner.outstanding() == self.bg_outstanding,
            "reset_state with foreground I/O outstanding"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::consumer_pcie_ssd;

    fn run_foreground(streams: u32, n: u64) -> (SimTime, u64) {
        let mut dev = WithBackgroundLoad::new(consumer_pcie_ssd(1 << 18, 1), streams, 1, 99);
        let mut rng = SimRng::seeded(5);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        // Foreground: serial random reads (qd 1).
        for i in 0..n {
            dev.submit(now, IoRequest::page(i, rng.below(1 << 18)));
            while dev.outstanding() > 0 {
                let t = dev.next_event().expect("busy");
                dev.advance(t, &mut out);
                now = t;
            }
        }
        (now, dev.background_completed())
    }

    #[test]
    fn foreground_sees_only_its_completions() {
        let (_, bg) = run_foreground(4, 50);
        assert!(bg > 0, "background must actually run");
    }

    #[test]
    fn background_load_slows_the_foreground() {
        let (t0, _) = run_foreground(0, 200);
        let (t16, _) = run_foreground(16, 200);
        assert!(t16 > t0, "16 competing streams must hurt: {t0} vs {t16}");
    }

    #[test]
    fn zero_streams_is_transparent() {
        let mut plain = consumer_pcie_ssd(1 << 18, 1);
        let mut wrapped = WithBackgroundLoad::new(consumer_pcie_ssd(1 << 18, 1), 0, 1, 9);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..50u64 {
            plain.submit(SimTime::ZERO, IoRequest::page(i, i * 101 % (1 << 18)));
            wrapped.submit(SimTime::ZERO, IoRequest::page(i, i * 101 % (1 << 18)));
        }
        crate::io::drain_all(&mut plain, SimTime::ZERO, &mut out_a);
        // drain via outstanding(): next_event never goes None under load,
        // but with zero streams it will.
        crate::io::drain_all(&mut wrapped, SimTime::ZERO, &mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn fair_share_heuristic() {
        let d = WithBackgroundLoad::new(consumer_pcie_ssd(1 << 16, 1), 3, 1, 9);
        assert_eq!(d.fair_share_of(32), 8);
        let d = WithBackgroundLoad::new(consumer_pcie_ssd(1 << 16, 1), 63, 1, 9);
        assert_eq!(d.fair_share_of(32), 1);
    }
}
