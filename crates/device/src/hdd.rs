//! Mechanical hard-disk model.
//!
//! A single-spindle drive is a *single server*: one request is in service at
//! a time. Service time is seek + rotational wait + media transfer, with a
//! sequential fast path (no seek, no rotational wait when a request
//! continues the previous one). Queued requests are reordered with
//! shortest-seek-time-first (the drive's NCQ/TCQ elevator), and the
//! rotational wait shrinks modestly as the queue grows (rotational position
//! ordering) — this is why a deeper queue helps a single spindle only a
//! little (Fig. 1: random @ qd 32 reaches ~1.3% of sequential bandwidth).

use crate::io::{DeviceModel, IoCompletion, IoRequest};
use pioqo_simkit::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Mechanical drive parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HddConfig {
    /// Page size in bytes (4 KiB everywhere in this reproduction).
    pub page_size: u32,
    /// Capacity in pages.
    pub capacity_pages: u64,
    /// Sustained sequential bandwidth, MB/s.
    pub seq_bandwidth_mb_s: f64,
    /// Track-to-track (minimum) seek, milliseconds.
    pub track_to_track_ms: f64,
    /// Full-stroke (maximum) seek, milliseconds.
    pub max_seek_ms: f64,
    /// Spindle speed, revolutions per minute.
    pub rpm: f64,
    /// Fixed per-request overhead for a random I/O (controller + host), µs.
    pub random_overhead_us: f64,
    /// Fixed per-request overhead on the sequential fast path, µs.
    pub seq_overhead_us: f64,
    /// Enable shortest-seek-first reordering of the pending queue (NCQ).
    pub sstf: bool,
    /// Strength of rotational-position optimization as the queue deepens:
    /// expected rotational wait is `half_rev / (1 + rpo_factor * queue_len)`.
    /// Zero disables it.
    pub rpo_factor: f64,
    /// Multiplicative service-time noise, e.g. `0.02` for ±2%.
    pub jitter: f64,
    /// RNG seed for rotational position and jitter.
    pub seed: u64,
    /// Model name for reports.
    pub name: String,
}

struct InService {
    req: IoRequest,
    submitted: SimTime,
    done: SimTime,
}

/// A simulated single-spindle hard disk. See the module docs.
pub struct Hdd {
    cfg: HddConfig,
    rng: SimRng,
    /// Current head position (page).
    head: u64,
    /// Offset that would continue the current sequential stream.
    seq_next: Option<u64>,
    pending: Vec<(IoRequest, SimTime)>,
    in_service: Option<InService>,
}

impl Hdd {
    /// Build a drive from its configuration.
    pub fn new(cfg: HddConfig) -> Self {
        let seed = cfg.seed;
        Hdd {
            cfg,
            rng: SimRng::seeded(seed),
            head: 0,
            seq_next: None,
            pending: Vec::new(),
            in_service: None,
        }
    }

    /// The configuration this drive was built with.
    pub fn config(&self) -> &HddConfig {
        &self.cfg
    }

    fn full_rotation_us(&self) -> f64 {
        60.0 * 1_000_000.0 / self.cfg.rpm
    }

    fn transfer_us(&self, pages: u32) -> f64 {
        let bytes = pages as f64 * self.cfg.page_size as f64;
        bytes / self.cfg.seq_bandwidth_mb_s // bytes / (MB/s) == µs per byte·1e-6 scale
    }

    /// Seek time for a head movement of `dist` pages, µs.
    fn seek_us(&self, dist: u64) -> f64 {
        if dist == 0 {
            return 0.0;
        }
        let frac = dist as f64 / self.cfg.capacity_pages as f64;
        (self.cfg.track_to_track_ms
            + (self.cfg.max_seek_ms - self.cfg.track_to_track_ms) * frac.sqrt())
            * 1_000.0
    }

    /// Service time for `req` given the current head state and queue length.
    fn service_us(&mut self, req: &IoRequest, queue_len: usize) -> f64 {
        let base = if self.seq_next == Some(req.offset) {
            // Sequential continuation: the head is already there and the
            // target sector is arriving under it.
            self.cfg.seq_overhead_us + self.transfer_us(req.len)
        } else {
            let dist = self.head.abs_diff(req.offset);
            let half_rev = self.full_rotation_us() / 2.0;
            let rot_scale = 1.0 + self.cfg.rpo_factor * queue_len as f64;
            // Uniform rotational phase, shrunk by rotational-position
            // ordering when the queue is deep.
            let rot = self.rng.unit() * 2.0 * half_rev / rot_scale;
            self.cfg.random_overhead_us + self.seek_us(dist) + rot + self.transfer_us(req.len)
        };
        base * self.rng.jitter(self.cfg.jitter)
    }

    /// Index into `pending` of the next request to serve.
    fn pick_next(&self) -> usize {
        if !self.cfg.sstf || self.pending.len() == 1 {
            return 0;
        }
        // Shortest seek first, preferring sequential continuations outright.
        let mut best = 0usize;
        let mut best_key = u64::MAX;
        for (i, (req, _)) in self.pending.iter().enumerate() {
            if self.seq_next == Some(req.offset) {
                return i;
            }
            let d = self.head.abs_diff(req.offset);
            if d < best_key {
                best_key = d;
                best = i;
            }
        }
        best
    }

    fn start_next(&mut self, now: SimTime) {
        debug_assert!(self.in_service.is_none());
        if self.pending.is_empty() {
            return;
        }
        let idx = self.pick_next();
        let (req, submitted) = self.pending.swap_remove(idx);
        let svc = self.service_us(&req, self.pending.len());
        let done = now + SimDuration::from_micros_f64(svc);
        self.head = req.end();
        self.seq_next = Some(req.end());
        self.in_service = Some(InService {
            req,
            submitted,
            done,
        });
    }
}

impl DeviceModel for Hdd {
    fn page_size(&self) -> u32 {
        self.cfg.page_size
    }

    fn capacity_pages(&self) -> u64 {
        self.cfg.capacity_pages
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        assert!(
            req.end() <= self.cfg.capacity_pages,
            "I/O past end of device: {:?} capacity={}",
            req,
            self.cfg.capacity_pages
        );
        self.pending.push((req, now));
        if self.in_service.is_none() {
            self.start_next(now);
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        self.in_service.as_ref().map(|s| s.done)
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        while let Some(s) = &self.in_service {
            if s.done > now {
                break;
            }
            let s = self.in_service.take().expect("checked above");
            out.push(IoCompletion::ok(s.req, s.submitted, s.done));
            let done = s.done;
            self.start_next(done);
        }
    }

    fn outstanding(&self) -> usize {
        self.pending.len() + usize::from(self.in_service.is_some())
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn reset_state(&mut self) {
        assert!(
            self.in_service.is_none() && self.pending.is_empty(),
            "reset_state with I/O outstanding"
        );
        self.head = 0;
        self.seq_next = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{drain_all, IoStatus};

    fn test_cfg() -> HddConfig {
        HddConfig {
            page_size: 4096,
            capacity_pages: 1 << 21, // 8 GiB
            seq_bandwidth_mb_s: 110.0,
            track_to_track_ms: 0.5,
            max_seek_ms: 14.0,
            rpm: 7200.0,
            random_overhead_us: 30.0,
            seq_overhead_us: 3.0,
            sstf: true,
            rpo_factor: 0.5,
            jitter: 0.0,
            seed: 1,
            name: "hdd-test".into(),
        }
    }

    fn run_reads(cfg: HddConfig, reqs: Vec<IoRequest>) -> Vec<IoCompletion> {
        let mut d = Hdd::new(cfg);
        for r in reqs {
            d.submit(SimTime::ZERO, r);
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        out
    }

    #[test]
    fn sequential_is_much_faster_than_random() {
        let n = 256u64;
        let seq: Vec<_> = (0..n).map(|i| IoRequest::page(i, i)).collect();
        let seq_done = run_reads(test_cfg(), seq)
            .last()
            .expect("completions")
            .completed;

        // Random pages scattered over the whole device, one at a time.
        let mut rng = SimRng::seeded(7);
        let rand: Vec<_> = (0..n)
            .map(|i| IoRequest::page(i, rng.below((1 << 21) - 1)))
            .collect();
        let mut d = Hdd::new(test_cfg());
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for r in rand {
            d.submit(now, r);
            now = drain_all(&mut d, now, &mut out);
        }
        let ratio = now.as_micros_f64() / seq_done.as_micros_f64();
        // The paper's HDD shows a 2-3 orders of magnitude gap.
        assert!(ratio > 50.0, "random/seq ratio too small: {ratio}");
    }

    #[test]
    fn deep_queue_helps_only_modestly() {
        let n = 512usize;
        let mut rng = SimRng::seeded(9);
        let offs: Vec<u64> = (0..n).map(|_| rng.below(1 << 21)).collect();

        // qd = 1: one at a time.
        let mut d1 = Hdd::new(test_cfg());
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for (i, &o) in offs.iter().enumerate() {
            d1.submit(now, IoRequest::page(i as u64, o));
            now = drain_all(&mut d1, now, &mut out);
        }
        let t_qd1 = now;

        // qd = 32: keep 32 outstanding.
        let mut d32 = Hdd::new(test_cfg());
        out.clear();
        let mut now = SimTime::ZERO;
        let mut next = 0usize;
        while next < 32.min(n) {
            d32.submit(now, IoRequest::page(next as u64, offs[next]));
            next += 1;
        }
        while d32.outstanding() > 0 {
            let t = d32.next_event().expect("busy device has an event");
            let before = out.len();
            d32.advance(t, &mut out);
            now = t;
            for _ in before..out.len() {
                if next < n {
                    d32.submit(now, IoRequest::page(next as u64, offs[next]));
                    next += 1;
                }
            }
        }
        let t_qd32 = now;
        let speedup = t_qd1.as_micros_f64() / t_qd32.as_micros_f64();
        // SSTF + RPO should help, but only by a small factor on one spindle.
        assert!(speedup > 1.3, "expected some NCQ benefit, got {speedup}");
        assert!(speedup < 8.0, "single spindle should not scale: {speedup}");
    }

    #[test]
    fn sequential_throughput_near_configured_bandwidth() {
        // 4 MiB of sequential block reads.
        let blocks: Vec<_> = (0..64).map(|i| IoRequest::block(i, i * 16, 16)).collect();
        let done = run_reads(test_cfg(), blocks)
            .last()
            .expect("completions")
            .completed;
        let mbps = pioqo_simkit::stats::mb_per_sec(64 * 16 * 4096, done - SimTime::ZERO);
        assert!(
            (80.0..=115.0).contains(&mbps),
            "sequential bandwidth off: {mbps} MB/s"
        );
    }

    #[test]
    fn completions_preserve_request_identity() {
        let out = run_reads(
            test_cfg(),
            vec![IoRequest::page(42, 100), IoRequest::page(43, 101)],
        );
        assert_eq!(out.len(), 2);
        let ids: std::collections::BTreeSet<_> = out.iter().map(|c| c.req.id).collect();
        assert!(ids.contains(&42) && ids.contains(&43));
        assert!(out.iter().all(|c| c.status == IoStatus::Ok));
        assert!(out.iter().all(|c| c.completed > c.submitted));
    }

    #[test]
    #[should_panic(expected = "past end of device")]
    fn rejects_out_of_range() {
        let mut d = Hdd::new(test_cfg());
        d.submit(SimTime::ZERO, IoRequest::page(0, 1 << 21));
    }

    #[test]
    fn reset_state_requires_idle() {
        let mut d = Hdd::new(test_cfg());
        d.submit(SimTime::ZERO, IoRequest::page(0, 5));
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        d.reset_state(); // idle: fine
        assert_eq!(d.outstanding(), 0);
    }
}
