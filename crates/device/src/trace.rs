//! Queue-depth tracing wrapper.
//!
//! The paper's §2 observation — "by profiling the I/O queue depth of the SSD
//! during the execution of the PIS operator using n workers, a queue depth of
//! n is clearly observable" — is something we verify rather than assume.
//! [`Traced`] wraps any [`DeviceModel`] and tracks the time-weighted mean and
//! peak number of outstanding I/Os plus basic latency/throughput counters.

use crate::io::{DeviceModel, IoCompletion, IoRequest};
use pioqo_simkit::{Running, SimTime, TimeWeighted};

/// A [`DeviceModel`] decorator that records queue-depth and latency
/// statistics without changing behaviour.
pub struct Traced<D> {
    inner: D,
    depth: TimeWeighted,
    latency_us: Running,
    pages_read: u64,
    ios: u64,
    first_submit: Option<SimTime>,
    last_complete: SimTime,
    scratch: Vec<IoCompletion>,
}

impl<D: DeviceModel> Traced<D> {
    /// Wrap a device.
    pub fn new(inner: D) -> Self {
        Traced {
            inner,
            depth: TimeWeighted::new(SimTime::ZERO, 0.0),
            latency_us: Running::new(),
            pages_read: 0,
            ios: 0,
            first_submit: None,
            last_complete: SimTime::ZERO,
            scratch: Vec::new(),
        }
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Time-weighted mean queue depth from the first submission to `now`.
    pub fn mean_queue_depth(&self, now: SimTime) -> f64 {
        self.depth.mean(now)
    }

    /// Highest instantaneous queue depth observed.
    pub fn peak_queue_depth(&self) -> f64 {
        self.depth.peak()
    }

    /// Per-I/O latency statistics (µs).
    pub fn latency_us(&self) -> &Running {
        &self.latency_us
    }

    /// Total pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Total I/O operations completed so far.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Mean read throughput in MB/s between the first submission and the
    /// last completion.
    pub fn throughput_mb_s(&self) -> f64 {
        match self.first_submit {
            Some(t0) => pioqo_simkit::stats::mb_per_sec(
                self.pages_read * self.inner.page_size() as u64,
                self.last_complete - t0,
            ),
            None => 0.0,
        }
    }
}

impl<D: DeviceModel> DeviceModel for Traced<D> {
    fn page_size(&self) -> u32 {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        self.first_submit.get_or_insert(now);
        self.depth.add(now, 1.0);
        self.inner.submit(now, req);
    }

    fn next_event(&self) -> Option<SimTime> {
        self.inner.next_event()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        self.scratch.clear();
        self.inner.advance(now, &mut self.scratch);
        for c in &self.scratch {
            self.depth.add(c.completed, -1.0);
            self.latency_us.push(c.latency().as_micros_f64());
            self.pages_read += c.req.len as u64;
            self.ios += 1;
            self.last_complete = self.last_complete.max(c.completed);
        }
        out.extend_from_slice(&self.scratch);
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset_state(&mut self) {
        self.inner.reset_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::drain_all;
    use crate::presets::consumer_pcie_ssd;

    #[test]
    fn records_depth_and_latency() {
        let mut d = Traced::new(consumer_pcie_ssd(1 << 20, 1));
        let mut out = Vec::new();
        // Keep 8 outstanding for a while.
        let mut now = SimTime::ZERO;
        let mut next: u64 = 0;
        while next < 8 {
            d.submit(now, IoRequest::page(next, next * 1000));
            next += 1;
        }
        while d.outstanding() > 0 {
            let t = d.next_event().expect("busy");
            let before = out.len();
            d.advance(t, &mut out);
            now = t;
            for _ in before..out.len() {
                if next < 200 {
                    d.submit(now, IoRequest::page(next, next * 1000));
                    next += 1;
                }
            }
        }
        assert_eq!(d.ios(), 200);
        assert_eq!(d.pages_read(), 200);
        assert!(d.peak_queue_depth() >= 8.0);
        let mean = d.mean_queue_depth(now);
        assert!(
            (4.0..=8.5).contains(&mean),
            "mean queue depth should hover near 8: {mean}"
        );
        assert!(d.latency_us().mean() > 0.0);
        assert!(d.throughput_mb_s() > 0.0);
    }

    #[test]
    fn passthrough_preserves_results() {
        let mut plain = consumer_pcie_ssd(1 << 20, 5);
        let mut traced = Traced::new(consumer_pcie_ssd(1 << 20, 5));
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..50u64 {
            plain.submit(SimTime::ZERO, IoRequest::page(i, i * 37 % (1 << 20)));
            traced.submit(SimTime::ZERO, IoRequest::page(i, i * 37 % (1 << 20)));
        }
        drain_all(&mut plain, SimTime::ZERO, &mut out_a);
        drain_all(&mut traced, SimTime::ZERO, &mut out_b);
        assert_eq!(out_a, out_b);
    }
}
