//! Queue-depth tracing wrapper.
//!
//! The paper's §2 observation — "by profiling the I/O queue depth of the SSD
//! during the execution of the PIS operator using n workers, a queue depth of
//! n is clearly observable" — is something we verify rather than assume.
//! [`Traced`] wraps any [`DeviceModel`] and tracks the time-weighted mean and
//! peak number of outstanding I/Os plus basic latency/throughput counters.
//! The counters are backed by `pioqo-obs` histograms ([`Traced::hists`]), and
//! an optional ring sink ([`Traced::enable_events`]) records per-I/O
//! submit/complete events for Chrome-trace export.

use crate::io::{DeviceModel, IoCompletion, IoRequest};
use pioqo_obs::{EventKind, HistSet, RingSink, TraceEvent, TraceSink};
use pioqo_simkit::{Running, SimTime, TimeWeighted};

/// A [`DeviceModel`] decorator that records queue-depth and latency
/// statistics without changing behaviour.
pub struct Traced<D> {
    inner: D,
    depth: TimeWeighted,
    depth_now: u32,
    latency_us: Running,
    hists: HistSet,
    pages_read: u64,
    ios: u64,
    first_submit: Option<SimTime>,
    last_complete: Option<SimTime>,
    sink: Option<RingSink>,
    track: u32,
    scratch: Vec<IoCompletion>,
}

impl<D: DeviceModel> Traced<D> {
    /// Wrap a device.
    pub fn new(inner: D) -> Self {
        Traced {
            inner,
            depth: TimeWeighted::new(SimTime::ZERO, 0.0),
            depth_now: 0,
            latency_us: Running::new(),
            hists: HistSet::new(),
            pages_read: 0,
            ios: 0,
            first_submit: None,
            last_complete: None,
            sink: None,
            track: 0,
            scratch: Vec::new(),
        }
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Record per-I/O submit/complete events into a ring of `capacity`
    /// events (for Chrome-trace export via [`Traced::take_sink`]).
    pub fn enable_events(&mut self, capacity: usize) {
        let mut sink = RingSink::with_capacity(capacity);
        self.track = sink.track("device");
        self.sink = Some(sink);
    }

    /// The event ring, if [`Traced::enable_events`] was called.
    pub fn sink(&self) -> Option<&RingSink> {
        self.sink.as_ref()
    }

    /// Detach and return the event ring (event recording stops).
    pub fn take_sink(&mut self) -> Option<RingSink> {
        self.sink.take()
    }

    /// Time-weighted mean queue depth from the first submission to `now`.
    pub fn mean_queue_depth(&self, now: SimTime) -> f64 {
        self.depth.mean(now)
    }

    /// Highest instantaneous queue depth observed.
    pub fn peak_queue_depth(&self) -> f64 {
        self.depth.peak()
    }

    /// Per-I/O latency statistics (µs).
    pub fn latency_us(&self) -> &Running {
        &self.latency_us
    }

    /// The latency / queue-depth histogram bundle (`io_latency_us` and
    /// `queue_depth` are populated; the logical-read histograms stay empty
    /// at this layer).
    pub fn hists(&self) -> &HistSet {
        &self.hists
    }

    /// Total pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Total I/O operations completed so far.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Mean read throughput in MB/s between the first submission and the
    /// last completion (0.0 until at least one I/O has *completed* — a
    /// device with submissions still in flight has no meaningful window).
    pub fn throughput_mb_s(&self) -> f64 {
        match (self.first_submit, self.last_complete) {
            (Some(t0), Some(t1)) if t1 > t0 => pioqo_simkit::stats::mb_per_sec(
                self.pages_read * self.inner.page_size() as u64,
                t1 - t0,
            ),
            _ => 0.0,
        }
    }
}

impl<D: DeviceModel> DeviceModel for Traced<D> {
    fn page_size(&self) -> u32 {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn submit(&mut self, now: SimTime, req: IoRequest) {
        self.first_submit.get_or_insert(now);
        self.depth.add(now, 1.0);
        self.depth_now += 1;
        self.hists.queue_depth.record(self.depth_now as u64);
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent {
                t: now,
                track: self.track,
                span: req.id,
                kind: EventKind::IoSubmit,
                a: req.offset,
                b: req.len as u64,
            });
        }
        self.inner.submit(now, req);
    }

    fn next_event(&self) -> Option<SimTime> {
        self.inner.next_event()
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<IoCompletion>) {
        self.scratch.clear();
        self.inner.advance(now, &mut self.scratch);
        for c in &self.scratch {
            self.depth.add(c.completed, -1.0);
            self.depth_now = self.depth_now.saturating_sub(1);
            self.latency_us.push(c.latency().as_micros_f64());
            self.hists
                .io_latency_us
                .record(c.latency().as_nanos() / 1000);
            self.pages_read += c.req.len as u64;
            self.ios += 1;
            self.last_complete = Some(match self.last_complete {
                Some(t) => t.max(c.completed),
                None => c.completed,
            });
            if let Some(sink) = &mut self.sink {
                sink.record(TraceEvent {
                    t: c.completed,
                    track: self.track,
                    span: c.req.id,
                    kind: EventKind::IoComplete,
                    a: c.req.len as u64,
                    b: (c.status == crate::io::IoStatus::Ok) as u64,
                });
            }
        }
        out.extend_from_slice(&self.scratch);
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset_state(&mut self) {
        self.inner.reset_state();
    }

    fn channels(&self) -> u32 {
        self.inner.channels()
    }

    fn channels_busy(&self, now: SimTime) -> u32 {
        self.inner.channels_busy(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::drain_all;
    use crate::presets::consumer_pcie_ssd;

    #[test]
    fn records_depth_and_latency() {
        let mut d = Traced::new(consumer_pcie_ssd(1 << 20, 1));
        let mut out = Vec::new();
        // Keep 8 outstanding for a while.
        let mut now = SimTime::ZERO;
        let mut next: u64 = 0;
        while next < 8 {
            d.submit(now, IoRequest::page(next, next * 1000));
            next += 1;
        }
        while d.outstanding() > 0 {
            let t = d.next_event().expect("busy");
            let before = out.len();
            d.advance(t, &mut out);
            now = t;
            for _ in before..out.len() {
                if next < 200 {
                    d.submit(now, IoRequest::page(next, next * 1000));
                    next += 1;
                }
            }
        }
        assert_eq!(d.ios(), 200);
        assert_eq!(d.pages_read(), 200);
        assert!(d.peak_queue_depth() >= 8.0);
        let mean = d.mean_queue_depth(now);
        assert!(
            (4.0..=8.5).contains(&mean),
            "mean queue depth should hover near 8: {mean}"
        );
        assert!(d.latency_us().mean() > 0.0);
        assert!(d.throughput_mb_s() > 0.0);
        // The histogram twins agree with the running counters.
        assert_eq!(d.hists().io_latency_us.count, 200);
        assert_eq!(d.hists().queue_depth.count, 200);
        assert!(d.hists().queue_depth.max >= 8);
    }

    #[test]
    fn passthrough_preserves_results() {
        let mut plain = consumer_pcie_ssd(1 << 20, 5);
        let mut traced = Traced::new(consumer_pcie_ssd(1 << 20, 5));
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..50u64 {
            plain.submit(SimTime::ZERO, IoRequest::page(i, i * 37 % (1 << 20)));
            traced.submit(SimTime::ZERO, IoRequest::page(i, i * 37 % (1 << 20)));
        }
        drain_all(&mut plain, SimTime::ZERO, &mut out_a);
        drain_all(&mut traced, SimTime::ZERO, &mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn throughput_is_zero_before_any_completion() {
        let mut d = Traced::new(consumer_pcie_ssd(1 << 20, 1));
        assert_eq!(d.throughput_mb_s(), 0.0, "nothing submitted");
        d.submit(SimTime::ZERO, IoRequest::page(0, 0));
        // Submitted but not completed: there is no transfer window yet, so
        // the rate must stay 0 (not divide a positive byte count by a
        // zero-or-negative window).
        assert_eq!(d.throughput_mb_s(), 0.0, "nothing completed");
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        assert!(d.throughput_mb_s() > 0.0);
    }

    #[test]
    fn event_ring_captures_submit_complete_pairs() {
        let mut d = Traced::new(consumer_pcie_ssd(1 << 20, 3));
        d.enable_events(64);
        for i in 0..5u64 {
            d.submit(SimTime::ZERO, IoRequest::page(i, i * 512));
        }
        let mut out = Vec::new();
        drain_all(&mut d, SimTime::ZERO, &mut out);
        let sink = d.take_sink().expect("enabled");
        let submits = sink
            .events()
            .filter(|e| matches!(e.kind, EventKind::IoSubmit))
            .count();
        let completes = sink
            .events()
            .filter(|e| matches!(e.kind, EventKind::IoComplete))
            .count();
        assert_eq!(submits, 5);
        assert_eq!(completes, 5);
        let json = sink.to_chrome_json();
        assert!(json.contains("\"device\""));
    }
}
