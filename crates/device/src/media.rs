//! Durable page images for crash/recovery testing.
//!
//! The device models move *time*, not bytes — payloads never travel through
//! [`DeviceModel`](crate::DeviceModel). [`MediaStore`] is the byte side of
//! the same story: a deterministic map from page number to page image that
//! a write path updates when (and only when) a write *completion* is
//! durable, and that recovery later reads back. Keeping bytes beside the
//! timing model rather than inside it preserves the existing read-only
//! machinery untouched while making "what exactly is on disk after a
//! crash" a first-class, byte-comparable object.
//!
//! Redundancy: [`MediaStore::with_redundancy`] keeps a shadow copy of
//! every durable write (modeling a RAID mirror/parity rebuild source).
//! [`reconstruct`](MediaStore::reconstruct) recovers a damaged primary
//! page from the shadow unless the array is
//! [`degraded`](MediaStore::set_degraded) — matching the fault layer's
//! degraded-read story. Damage ([`tear`](MediaStore::tear) /
//! [`corrupt`](MediaStore::corrupt)) only ever touches the primary, and is
//! seeded per-page so a given (seed, page) damages identical bytes on
//! every run.

use pioqo_simkit::SimRng;
use std::collections::BTreeMap;

/// Header bytes at the front of every encoded page (the storage page
/// codec's magic + fields). Injected damage always lands at or past this
/// offset so it hits checksummed payload bytes and is guaranteed to be
/// detected by `decode` — damage confined to the header could otherwise
/// alias to a different-but-valid header.
const HEADER_BYTES: u64 = 32;

/// Deterministic page-image storage with optional redundancy.
#[derive(Debug, Clone)]
pub struct MediaStore {
    page_size: u32,
    primary: BTreeMap<u64, Vec<u8>>,
    /// Shadow images (redundancy); `None` for a non-redundant device.
    shadow: Option<BTreeMap<u64, Vec<u8>>>,
    degraded: bool,
    writes: u64,
    damaged: u64,
}

impl MediaStore {
    /// An empty store for a device with `page_size`-byte pages.
    pub fn new(page_size: u32) -> Self {
        assert!(
            page_size as u64 > HEADER_BYTES,
            "page too small to damage safely"
        );
        MediaStore {
            page_size,
            primary: BTreeMap::new(),
            shadow: None,
            degraded: false,
            writes: 0,
            damaged: 0,
        }
    }

    /// Enable redundancy: every subsequent durable write is mirrored to a
    /// shadow copy that [`reconstruct`](Self::reconstruct) can read back.
    pub fn with_redundancy(mut self) -> Self {
        self.shadow = Some(BTreeMap::new());
        self
    }

    /// Mark the redundancy degraded (rebuild source unavailable) or
    /// healthy again. No-op for non-redundant stores.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// True when redundancy exists and is currently usable.
    pub fn redundancy_available(&self) -> bool {
        self.shadow.is_some() && !self.degraded
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Number of pages with an image.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// True when no page has been written.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// Durable full-page write: replaces the primary (and shadow) image.
    ///
    /// # Panics
    /// Panics when `image` is not exactly one page.
    pub fn write(&mut self, page: u64, image: &[u8]) {
        assert_eq!(
            image.len(),
            self.page_size as usize,
            "media write must be exactly one page"
        );
        self.primary.insert(page, image.to_vec());
        if let Some(shadow) = &mut self.shadow {
            shadow.insert(page, image.to_vec());
        }
        self.writes += 1;
    }

    /// The current primary image of `page`, if any.
    pub fn read(&self, page: u64) -> Option<&[u8]> {
        self.primary.get(&page).map(Vec::as_slice)
    }

    /// True when `page` has a primary image.
    pub fn contains(&self, page: u64) -> bool {
        self.primary.contains_key(&page)
    }

    /// Iterate `(page, image)` in page order.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.primary.iter().map(|(p, v)| (*p, v.as_slice()))
    }

    /// Recover `page` from the shadow copy, if redundancy is available and
    /// holds the page. The caller decides whether the result is sane (e.g.
    /// by decoding it) before writing it back.
    pub fn reconstruct(&self, page: u64) -> Option<Vec<u8>> {
        if self.degraded {
            return None;
        }
        self.shadow.as_ref()?.get(&page).cloned()
    }

    /// Count of durable writes applied.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Count of pages damaged by [`tear`](Self::tear)/[`corrupt`](Self::corrupt).
    pub fn damaged(&self) -> u64 {
        self.damaged
    }

    /// Model a torn write: the primary image of `page` is damaged in a
    /// seeded, byte-deterministic way (the shadow is untouched — tearing
    /// happens on the write path to one copy). A page with no image gets a
    /// seeded garbage image (a partial write onto an unwritten sector).
    pub fn tear(&mut self, page: u64, seed: u64) {
        self.damage(page, seed ^ 0x5445_4152);
    }

    /// Model silent at-rest corruption of `page`'s primary image. Same
    /// damage mechanics as [`tear`](Self::tear) under a different salt so
    /// the two fault kinds perturb different bytes for the same seed.
    pub fn corrupt(&mut self, page: u64, seed: u64) {
        self.damage(page, seed ^ 0x4252_4F54);
    }

    fn damage(&mut self, page: u64, seed: u64) {
        let page_size = self.page_size as usize;
        let image = self
            .primary
            .entry(page)
            .or_insert_with(|| vec![0; page_size]);
        let mut rng = SimRng::seeded(seed ^ page.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // XOR a nonzero byte into 16 seeded payload positions: at least one
        // checksummed byte is guaranteed to differ from any valid encoding.
        for _ in 0..16 {
            let pos = HEADER_BYTES + rng.below(self.page_size as u64 - HEADER_BYTES);
            let flip = (rng.next_u64() as u8) | 1;
            image[pos as usize] ^= flip;
        }
        self.damaged += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(page_size: u32, fill: u8) -> Vec<u8> {
        vec![fill; page_size as usize]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = MediaStore::new(4096);
        assert!(m.is_empty());
        m.write(7, &img(4096, 0xAB));
        assert_eq!(m.read(7).expect("written page present")[0], 0xAB);
        assert_eq!(m.len(), 1);
        assert!(m.contains(7) && !m.contains(8));
    }

    #[test]
    #[should_panic(expected = "exactly one page")]
    fn partial_write_panics() {
        MediaStore::new(4096).write(0, &[0u8; 100]);
    }

    #[test]
    fn tear_is_seed_deterministic_and_detectable() {
        let run = |seed| {
            let mut m = MediaStore::new(4096);
            m.write(3, &img(4096, 0x11));
            m.tear(3, seed);
            m.read(3).expect("torn page still has bytes").to_vec()
        };
        assert_eq!(run(5), run(5), "same seed damages identical bytes");
        assert_ne!(run(5), run(6), "different seeds damage differently");
        assert_ne!(run(5), img(4096, 0x11), "tear must change the image");
        // Damage never lands in the header region.
        let torn = run(5);
        assert_eq!(&torn[..32], &img(4096, 0x11)[..32]);
    }

    #[test]
    fn corrupt_differs_from_tear() {
        let mut a = MediaStore::new(4096);
        a.write(0, &img(4096, 0));
        a.tear(0, 9);
        let mut b = MediaStore::new(4096);
        b.write(0, &img(4096, 0));
        b.corrupt(0, 9);
        assert_ne!(a.read(0), b.read(0));
        assert_eq!(a.damaged(), 1);
    }

    #[test]
    fn reconstruct_uses_shadow_unless_degraded() {
        let mut m = MediaStore::new(4096).with_redundancy();
        m.write(2, &img(4096, 0x77));
        m.tear(2, 1);
        assert_ne!(m.read(2).expect("primary"), &img(4096, 0x77)[..]);
        assert_eq!(
            m.reconstruct(2).expect("shadow survives the tear"),
            img(4096, 0x77)
        );
        m.set_degraded(true);
        assert!(!m.redundancy_available());
        assert!(m.reconstruct(2).is_none(), "degraded array cannot rebuild");
        m.set_degraded(false);
        assert!(m.reconstruct(2).is_some());
    }

    #[test]
    fn no_redundancy_never_reconstructs() {
        let mut m = MediaStore::new(4096);
        m.write(1, &img(4096, 4));
        assert!(m.reconstruct(1).is_none());
        assert!(!m.redundancy_available());
    }

    #[test]
    fn tear_on_unwritten_page_creates_garbage() {
        let mut m = MediaStore::new(4096);
        m.tear(9, 3);
        let bytes = m.read(9).expect("partial write onto empty sector");
        assert_eq!(bytes.len(), 4096);
        assert!(bytes.iter().any(|&b| b != 0), "damage must be visible");
    }
}
