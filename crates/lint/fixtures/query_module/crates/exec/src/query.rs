//! Known-bad fixture: a query layer that breaks determinism in the three
//! ways a predicate/join module is most tempted to. The lint must treat
//! `exec/src/query.rs` exactly like the rest of the sim crate — D1, D3
//! and D8 all fire here. Never compiled; only scanned.

use crate::model::SimRng;
use std::collections::HashMap;
use std::time::Instant;

/// D3: a hash-join build table keyed by join key. `HashMap` iteration
/// order would decide partition drain order — the row fingerprint (and
/// any tie-broken aggregate) then depends on the hasher seed.
pub struct BuildTable {
    pub rows: HashMap<u32, Vec<u32>>,
}

impl BuildTable {
    /// D3 again at the use site, plus D1: timing predicate evaluation
    /// with the host clock to pick a pushdown strategy — plan choice
    /// must come from the virtual cost model, not wall time.
    pub fn drain_partitions(&mut self) -> Vec<u32> {
        let started = Instant::now();
        let drained: Vec<u32> = self.rows.keys().copied().collect();
        let _ = started.elapsed();
        drained
    }
}

/// D8: cloning the query's RNG to jitter each spill partition — the
/// cloned stream replays identical draws, correlating every partition's
/// "independent" jitter.
pub fn partition_jitter(rng: &SimRng, partitions: u32) -> Vec<u64> {
    (0..partitions)
        .map(|_| {
            let twin = rng.clone();
            twin.peek()
        })
        .collect()
}
