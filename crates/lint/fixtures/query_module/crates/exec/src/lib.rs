//! Fixture crate root: a clean `exec` lib so the only findings in this
//! tree come from the query module next door. Never compiled; only
//! scanned by the lint integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;

/// A compliant helper so the root has real (clean) code to scan.
pub fn residual_terms(sargable: u32, total: u32) -> u32 {
    total.saturating_sub(sargable)
}
