//! Fixture crate root: a clean `bufpool` lib so the only findings in this
//! tree come from the WAL module next door. Never compiled; only scanned
//! by the lint integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wal;

/// A compliant helper so the root has real (clean) code to scan.
pub fn frames_for(pages: u64, frame_pages: u64) -> u64 {
    pages.div_ceil(frame_pages.max(1))
}
