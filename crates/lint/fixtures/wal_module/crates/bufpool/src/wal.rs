//! Known-bad fixture: a write-ahead log that stamps its commit records
//! with the host's wall clock. Replaying such a log can never reproduce
//! the original run — group-commit boundaries land wherever the OS
//! scheduler happened to put them — so D1 must fire in `bufpool/src/wal.rs`
//! exactly as it would in the crate root. Never compiled; only scanned.

use std::time::SystemTime;

/// One logged record with its (wall-clock!) commit stamp.
pub struct StampedRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// Seconds since the UNIX epoch at append time — the determinism bug.
    pub stamp_secs: u64,
}

/// D1: a WAL append that reads `SystemTime::now()` for its commit stamp.
/// Durability decisions keyed off this value differ run to run.
pub fn append_with_wall_stamp(lsn: u64) -> StampedRecord {
    let stamp_secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    StampedRecord { lsn, stamp_secs }
}
