//! Fixture crate root: a clean `exec` lib so the only findings in this
//! tree come from the session module next door. Never compiled; only
//! scanned by the lint integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;

/// A compliant helper so the root has real (clean) code to scan.
pub fn admit(active: usize, total: u32) -> u32 {
    (total / (active as u32 + 1)).max(1)
}
