//! Known-bad fixture: a multi-session engine that breaks determinism in
//! the three ways a concurrency layer is most tempted to. The lint must
//! treat `exec/src/session.rs` exactly like the rest of the sim crate —
//! D1/D3/D7 all fire here. Never compiled; only scanned.

use std::collections::HashMap;
use std::time::Instant;

/// Per-session state keyed by session id. D3: `HashMap` iteration order
/// would decide which session is admitted first — the classic
/// plan-choice-depends-on-hasher bug.
pub struct SessionTable {
    pub sessions: HashMap<u32, u64>,
}

impl SessionTable {
    /// D3 again at the use site, plus D1: stamping admission with the
    /// wall clock instead of virtual time.
    pub fn admit_next(&mut self) -> Option<u32> {
        let started = Instant::now();
        let _ = started.elapsed();
        self.sessions.keys().next().copied()
    }
}

/// D7: real OS threads inside the simulation — sessions must interleave
/// on the virtual event loop, not the host scheduler.
pub fn run_sessions_on_host_threads(n: u32) -> Vec<std::thread::JoinHandle<()>> {
    (0..n).map(|_| std::thread::spawn(|| {})).collect()
}
