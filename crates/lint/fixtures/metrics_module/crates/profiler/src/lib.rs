//! Near-miss fixture: the harness-side self-profiler. It reads the host
//! clock by design — that is its entire job — but it lives in a
//! harness-only crate that nothing deterministic reads, so the workspace
//! carries a D1 allowlist entry for it. The integration test scans this
//! tree twice: without the entry D1 must fire here, and with the entry
//! the finding is suppressed *and the entry counts as used* (not stale).
//! Never compiled; only scanned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// A scoped wall-clock phase timer, as the real `pioqo-profiler` has.
pub struct PhaseTimer {
    started: Instant,
    /// Accumulated phase time in nanoseconds.
    pub total_ns: u64,
}

impl PhaseTimer {
    /// Start timing a phase on the host clock.
    pub fn start() -> Self {
        PhaseTimer {
            started: Instant::now(),
            total_ns: 0,
        }
    }

    /// Close the phase and accumulate its wall time.
    pub fn stop(&mut self) {
        self.total_ns += self.started.elapsed().as_nanos() as u64;
    }
}
