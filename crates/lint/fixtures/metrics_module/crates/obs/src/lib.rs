//! Fixture crate root: a clean `obs` lib so the only findings in this
//! tree come from the metrics sink module next door. Never compiled;
//! only scanned by the lint integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics_sink;

/// A compliant helper so the root has real (clean) code to scan.
pub fn permille(num: u64, den: u64) -> u64 {
    if den == 0 {
        0
    } else {
        num * 1000 / den
    }
}
