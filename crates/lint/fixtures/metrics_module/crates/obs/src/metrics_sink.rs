//! Known-bad fixture: a metrics sink inside a sim crate that samples the
//! host's wall clock. A registry fed wall-clock timestamps renders
//! different exports on every run and on every thread count — exactly the
//! byte-determinism break the metrics layer exists to rule out — so D1
//! must fire in `obs/src/metrics_sink.rs` just as it would in the crate
//! root. Never compiled; only scanned.

use std::time::Instant;

/// A time-series point stamped with host time — the determinism bug.
pub struct WallPoint {
    /// Nanoseconds since sink construction, from the host clock.
    pub wall_ns: u64,
    /// The sampled value.
    pub value: u64,
}

/// D1: a metrics sink that stamps samples with `Instant::now()`. The
/// series this produces can never merge byte-identically across runs.
pub struct WallClockSink {
    epoch: Instant,
    points: Vec<WallPoint>,
}

impl WallClockSink {
    /// Open a sink whose epoch is the host clock at construction.
    pub fn new() -> Self {
        WallClockSink {
            epoch: Instant::now(),
            points: Vec::new(),
        }
    }

    /// Record `value` at the *wall-clock* offset since the epoch.
    pub fn sample(&mut self, value: u64) {
        let wall_ns = self.epoch.elapsed().as_nanos() as u64;
        self.points.push(WallPoint { wall_ns, value });
    }
}
