//! Known-bad fixture: every flow-sensitive rule D8-D11 fires at least
//! once below, each in the shape it was designed to catch. Never
//! compiled; only scanned. Companion near-misses live in `flow_ok.rs`.

use crate::model::{Budget, Device, ExecError, Queue, SimRng, Store};

/// D8 (a): cloning an RNG stream replays the same draws twice.
pub fn correlated_streams(rng: &SimRng) -> SimRng {
    let twin = rng.clone();
    twin
}

/// D8 (b): one stream both handed out `&mut` and forked in the same
/// loop body — the fork salt depends on the callee's draw count.
pub fn coupled_fork(rng: &mut SimRng, items: &[u64]) -> u64 {
    let mut acc = 0;
    for item in items {
        acc += jitter(&mut rng, *item);
        let child = rng.fork(*item);
        acc += child.peek();
    }
    acc
}

/// D8 (c): a session loop drawing from a stream declared outside it —
/// session N's draws depend on how much randomness 0..N consumed.
pub fn shared_session_stream(rng: &mut SimRng, sessions: &[u64]) -> u64 {
    let mut acc = 0;
    for session in sessions {
        acc += rng.next_u64() ^ session;
    }
    acc
}

/// D9: the `?` on the device read exits the function with the lease
/// still held — the release below is skipped on that path.
pub fn leaky_lease(budget: &mut Budget, dev: &mut Device) -> Result<u64, ExecError> {
    let lease = budget.acquire();
    let pages = dev.read_page()?;
    budget.release(lease);
    Ok(pages)
}

/// D9 again: the early-return branch leaks the lease.
pub fn branch_leak(budget: &mut Budget, dev: &Device) -> u64 {
    let lease = budget.acquire();
    if dev.is_idle() {
        return 0;
    }
    budget.release(lease);
    1
}

/// D10: scheduling at `now - grace` fires an event in the past.
pub fn schedule_in_past(q: &mut Queue, grace: u64) {
    q.schedule(q.now() - grace, 7);
}

/// D10 through a binding: the argument traces to `now - ...` via `let`.
pub fn schedule_in_past_traced(q: &mut Queue, grace: u64) {
    let rewound = q.now() - grace;
    let armed = rewound;
    q.complete_at(armed, 7);
}

/// D11 support: a deprecated free function and a deprecated method.
#[deprecated(note = "use stripe")]
pub fn legacy_stripe(pages: u64) -> u64 {
    pages
}

/// Carrier type for the deprecated method case.
pub struct Planner;

impl Planner {
    /// Deprecated associated fn; only `Planner::pick` calls may trip.
    #[deprecated(note = "use choose")]
    pub fn pick(pages: u64) -> u64 {
        pages
    }
}

/// D11: internal calls to both deprecated items above.
pub fn still_calling_shims(pages: u64) -> u64 {
    legacy_stripe(pages) + Planner::pick(pages)
}
