//! Near-miss fixture: every function below sits one step away from a
//! D8-D11 violation and must stay silent. A false positive on any of
//! these shapes would make the flow rules unusable on the real engine.
//! Never compiled; only scanned.

use crate::model::{Budget, Device, ExecError, Queue, ScanConfig, SimRng, Store};

/// D8 (a) near-miss: cloning a non-RNG value is fine.
pub fn clone_config(cfg: &ScanConfig) -> ScanConfig {
    let spec = cfg.clone();
    spec
}

/// D8 (b) near-miss: forking in a loop is the blessed pattern when the
/// parent stream is not also handed out `&mut` in the same body.
pub fn derive_children(rng: &mut SimRng, items: &[u64]) -> u64 {
    let mut acc = 0;
    for item in items {
        let child = rng.fork(*item);
        acc += child.peek();
    }
    acc
}

/// D8 (c) near-miss: a session loop that derives a fresh per-session
/// stream inside the body keeps sessions statistically independent.
pub fn per_session_stream(seed: u64, sessions: &[u64]) -> u64 {
    let mut acc = 0;
    for session in sessions {
        let mut rng = SimRng::derive(seed, *session);
        acc += rng.next_u64();
    }
    acc
}

/// D9 near-miss: the lease is released before the fallible step, so the
/// `?` exit path no longer holds it.
pub fn release_before_try(budget: &mut Budget, dev: &mut Device) -> Result<u64, ExecError> {
    let lease = budget.acquire();
    let pages = dev.read_page();
    budget.release(lease);
    let pages = pages?;
    Ok(pages)
}

/// D9 near-miss: every branch consumes the lease — one releases it, the
/// other moves it into a store.
pub fn branch_release(budget: &mut Budget, dev: &Device, store: &mut Store) -> u64 {
    let lease = budget.acquire();
    if dev.is_idle() {
        budget.release(lease);
        return 0;
    }
    store.keep(lease);
    1
}

/// D10 near-miss: deadlines computed as `now + duration` are causal.
pub fn schedule_ahead(q: &mut Queue, grace: u64) {
    q.schedule(q.now() + grace, 7);
}

/// D10 near-miss: clamping a stored stamp with `.max(now)` is the
/// blessed retrofit for possibly-stale timestamps.
pub fn clamp_to_now(q: &mut Queue, stamp: u64) {
    let armed = stamp.max(q.now());
    q.complete_at(armed, 9);
}

/// D10 near-miss: `now - x` outside a scheduling argument is ordinary
/// elapsed-time math, not a causality violation.
pub fn elapsed_since(q: &Queue, start: u64) -> u64 {
    let elapsed = q.now() - start;
    elapsed
}

/// D11 near-miss: an unrelated receiver's `pick` method and a different
/// type's associated `pick` share the deprecated method's name only.
pub fn same_name_different_type(dev: &Device, pages: u64) -> u64 {
    dev.pick(pages) + Store::pick(pages)
}

#[cfg(test)]
mod tests {
    // D11 near-miss: tests may pin deprecated behavior until the shim is
    // deleted; calls in the trailing test region are exempt.
    use super::super::flow_bad::legacy_stripe;

    #[test]
    fn shim_still_answers() {
        assert_eq!(legacy_stripe(4), 4);
    }
}
