//! Fixture crate root for the flow-sensitive rules D8-D11. The root is
//! clean; the trip cases live in `flow_bad.rs` and the near-misses that
//! must stay silent live in `flow_ok.rs`. Never compiled; only scanned
//! by the lint integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow_bad;
pub mod flow_ok;

/// A compliant helper so the root has real (clean) code to scan.
pub fn stripe(pages: u64, channels: u64) -> u64 {
    pages / channels.max(1)
}
