//! Clean fixture crate: no lint rule fires anywhere in this file. Used by
//! the integration tests to guard against false positives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Deterministic lookup with an error return instead of a panic.
pub fn lookup(m: &BTreeMap<u64, u64>, key: u64) -> Result<u64, String> {
    m.get(&key).copied().ok_or_else(|| format!("key {key} missing"))
}

/// Mentions of Instant, thread_rng, HashMap, or wait_ns * 2 in comments
/// and strings must never trigger: "use std::time::Instant".
pub fn prose() -> &'static str {
    "HashMap and thread_rng and deadline + 1 are fine inside a string"
}
