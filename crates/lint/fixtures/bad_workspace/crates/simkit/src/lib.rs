// Known-bad fixture for the pioqo-lint integration tests. Every rule
// D1-D5 and D7 fires at least once below, and the absence of the
// mandatory crate-root attributes makes D6 fire twice. This file is never
// compiled; it only exists to be scanned. The trailing #[cfg(test)]
// module holds would-be violations that must NOT be reported.

use std::collections::HashMap;
use std::time::Instant;

pub fn stamp(events: &HashMap<u64, u64>) -> u64 {
    let started = Instant::now();
    let seed = rand::thread_rng().gen::<u64>();
    let wait_ns = seed * 3;
    let deadline = wait_ns + started.elapsed().as_nanos() as u64;
    events.get(&deadline).copied().unwrap()
}

pub fn short_message(v: Option<u64>) -> u64 {
    v.expect("bad")
}

pub fn boom() -> ! {
    panic!("fixture panic");
}

pub fn race() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}

// A descriptive expect and BTree collections are compliant; these lines
// must not produce diagnostics.
pub fn compliant(v: Option<u64>, m: &std::collections::BTreeMap<u64, u64>) -> u64 {
    v.expect("fixture invariant: caller always passes Some") + m.len() as u64
}

// A trace sink that stamps events with the wall clock instead of the
// virtual one — exactly the bug the observability layer's D1 coverage
// exists to catch (sinks run inside the simulation, so a SystemTime
// read here would leak host timing into "deterministic" exports).
pub struct WallClockSink;

impl WallClockSink {
    pub fn record(&mut self, event: u64) -> u64 {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap();
        event ^ stamp.subsec_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    // Violations inside the test region are exempt from D1-D5.
    use std::collections::HashSet;
    use std::time::SystemTime;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let _ = SystemTime::now();
        let s: HashSet<u32> = HashSet::new();
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap() + s.len() as u32, 1);
    }
}
