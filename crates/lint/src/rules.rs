//! The determinism and unit-safety rules (D1-D6).
//!
//! Every rule scans the masked source (see [`crate::lexer`]) so that
//! comments and string literals never trigger findings. Rules D1-D5 skip
//! the trailing `#[cfg(test)]` region of a file; by workspace convention
//! test modules come last, and the lint treats everything from the first
//! `#[cfg(test)]` attribute to end-of-file as test code.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D1   | No wall-clock types (`Instant`, `SystemTime`) — virtual time only |
//! | D2   | No ambient entropy (`thread_rng`, `OsRng`, ...) — seeded `SimRng` only |
//! | D3   | No `HashMap`/`HashSet` in simulation crates — iteration order leaks |
//! | D4   | No raw arithmetic on time-named bindings — use `SimTime`/`SimDuration` |
//! | D5   | No panics in library crates (`unwrap`, `panic!`, ...) — return errors |
//! | D6   | Library crates declare `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | D7   | No OS threads in simulation crates — concurrency is modeled in virtual time |

use crate::diag::Diagnostic;
use crate::lexer::is_ident_char;

/// All rule identifiers, in severity-agnostic lexical order.
pub const RULE_IDS: &[&str] = &["D1", "D2", "D3", "D4", "D5", "D6", "D7"];

/// Crates whose code runs inside the deterministic simulation; D3/D4
/// apply only here (matching the `crates/<name>` directory name).
pub const SIM_CRATES: &[&str] = &[
    "simkit",
    "device",
    "exec",
    "bufpool",
    "core",
    "optimizer",
    "obs",
];

/// Shortest `.expect("...")` message D5 accepts as descriptive.
const MIN_EXPECT_MESSAGE: usize = 10;

/// One source file plus the crate facts the rules need.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: &'a str,
    /// Directory name of the owning crate under `crates/`.
    pub crate_dir: &'a str,
    /// True when the owning crate has a `src/lib.rs` (library crate).
    pub is_lib_crate: bool,
    /// True when this file *is* the crate's `src/lib.rs`.
    pub is_lib_root: bool,
    /// Full original source text.
    pub original: &'a str,
}

/// Byte offsets of line starts, for offset→line mapping.
struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(text: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line number containing byte `offset`.
    fn line_of(&self, offset: usize) -> u64 {
        match self.starts.binary_search(&offset) {
            Ok(i) => i as u64 + 1,
            Err(i) => i as u64,
        }
    }

    /// The original text of the line containing byte `offset`, trimmed.
    fn snippet<'a>(&self, text: &'a str, offset: usize) -> &'a str {
        let line = self.line_of(offset) as usize - 1;
        let start = self.starts[line];
        let end = self
            .starts
            .get(line + 1)
            .map(|e| e - 1)
            .unwrap_or(text.len());
        text[start..end].trim()
    }
}

/// Run every applicable rule over one file, appending findings.
pub fn check_file(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    let masked = crate::lexer::mask_source(input.original);
    let lines = LineIndex::new(&masked);
    let test_start = test_region_start(&masked).unwrap_or(usize::MAX);

    let mut emit = |rule: &str, offset: usize, message: String| {
        out.push(Diagnostic {
            rule: rule.to_string(),
            path: input.rel_path.to_string(),
            line: lines.line_of(offset),
            message,
            snippet: truncate(lines.snippet(input.original, offset)),
        });
    };

    // D1: wall-clock types.
    for token in ["Instant", "SystemTime"] {
        for off in word_hits(&masked, token) {
            if off >= test_start {
                continue;
            }
            emit(
                "D1",
                off,
                format!("wall-clock type `{token}`: simulated code must use SimTime/SimDuration"),
            );
        }
    }

    // D2: ambient entropy.
    for token in [
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
    ] {
        for off in word_hits(&masked, token) {
            if off >= test_start {
                continue;
            }
            emit(
                "D2",
                off,
                format!("ambient entropy `{token}`: randomness must flow through a seeded SimRng"),
            );
        }
    }

    let is_sim = SIM_CRATES.contains(&input.crate_dir);

    // D3: hash-ordered collections in simulation crates.
    if is_sim {
        for token in ["HashMap", "HashSet"] {
            for off in word_hits(&masked, token) {
                if off >= test_start {
                    continue;
                }
                emit(
                    "D3",
                    off,
                    format!(
                        "`{token}` in simulation crate: iteration order is seed-independent; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                );
            }
        }
    }

    // D4: raw arithmetic on time-named bindings.
    if is_sim {
        for (off, ident) in time_arith_hits(&masked) {
            if off >= test_start {
                continue;
            }
            emit(
                "D4",
                off,
                format!(
                    "raw arithmetic on time-named binding `{ident}`: \
                     wrap it in SimTime/SimDuration so units cannot mix"
                ),
            );
        }
    }

    // D7: OS threading primitives in simulation crates. Harness crates
    // (repro, bench, workload) may spawn real threads freely; inside the
    // simulation, concurrency must be modeled in virtual time, and the
    // only sanctioned real-thread site is `simkit::par` (allowlisted in
    // lint.toml with its determinism argument).
    if is_sim {
        for token in ["thread", "spawn", "JoinHandle"] {
            for off in word_hits(&masked, token) {
                if off >= test_start {
                    continue;
                }
                emit(
                    "D7",
                    off,
                    format!(
                        "OS thread primitive `{token}` in simulation crate: model concurrency \
                         in virtual time; real threads belong to the harness (simkit::par)"
                    ),
                );
            }
        }
    }

    // D5: panics in library crates.
    if input.is_lib_crate {
        for off in word_hits(&masked, "unwrap") {
            if off >= test_start || !is_method_call(&masked, off, "unwrap") {
                continue;
            }
            emit(
                "D5",
                off,
                "bare `.unwrap()` in library crate: return an error or use a descriptive `.expect()`"
                    .to_string(),
            );
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            for off in word_hits(&masked, mac) {
                if off >= test_start {
                    continue;
                }
                if masked[off + mac.len()..].starts_with('!') {
                    emit(
                        "D5",
                        off,
                        format!("`{mac}!` in library crate: return an error instead of panicking"),
                    );
                }
            }
        }
        for off in word_hits(&masked, "expect") {
            if off >= test_start || !is_method_call(&masked, off, "expect") {
                continue;
            }
            if let Some(len) = expect_message_len(input.original, &masked, off) {
                if len < MIN_EXPECT_MESSAGE {
                    emit(
                        "D5",
                        off,
                        format!(
                            "`.expect()` message is only {len} chars: describe the violated \
                             invariant (>= {MIN_EXPECT_MESSAGE} chars)"
                        ),
                    );
                }
            }
        }
    }

    // D6: mandatory crate-root hygiene attributes.
    if input.is_lib_root {
        let squashed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
        for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !squashed.contains(attr) {
                emit("D6", 0, format!("library crate root is missing `{attr}`"));
            }
        }
    }
}

/// Byte offset where the trailing `#[cfg(test)]` region begins, if any.
fn test_region_start(masked: &str) -> Option<usize> {
    let mut offset = 0;
    for line in masked.split_inclusive('\n') {
        let squashed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        if squashed.contains("#[cfg(test)]") {
            return Some(offset);
        }
        offset += line.len();
    }
    None
}

/// All word-boundary occurrences of `token` in `text`.
fn word_hits(text: &str, token: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        let off = from + pos;
        let before_ok = off == 0 || !is_ident_char(bytes[off - 1]);
        let after = off + token.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            hits.push(off);
        }
        from = off + token.len();
    }
    hits
}

/// True when the identifier at `off` is invoked as `.name(` — a method
/// call, as opposed to a standalone function or a path segment.
fn is_method_call(masked: &str, off: usize, name: &str) -> bool {
    let bytes = masked.as_bytes();
    if off == 0 || bytes[off - 1] != b'.' {
        return false;
    }
    let mut i = off + name.len();
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t' || bytes[i] == b'\n') {
        i += 1;
    }
    i < bytes.len() && bytes[i] == b'('
}

/// Character length of the string literal passed to `.expect(` at `off`,
/// or `None` when the argument is not a string literal.
fn expect_message_len(original: &str, masked: &str, off: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let mut i = off + "expect".len();
    while i < bytes.len() && bytes[i] != b'(' {
        i += 1;
    }
    i += 1;
    let orig = original.as_bytes();
    while i < orig.len() && (orig[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= orig.len() || orig[i] != b'"' {
        return None;
    }
    i += 1;
    let start = i;
    let mut len = 0usize;
    while i < orig.len() {
        match orig[i] {
            b'\\' => {
                len += 1;
                i += 2;
            }
            b'"' => return Some(len),
            _ => {
                len += 1;
                i += 1;
            }
        }
    }
    Some(i - start)
}

/// True when an identifier names a raw time quantity D4 protects.
fn is_time_name(ident: &str) -> bool {
    ident.ends_with("_ns") || ident.ends_with("_time") || ident == "deadline" || ident == "latency"
}

/// Offsets (and names) of time-named identifiers used as operands of raw
/// `+ - * / %` arithmetic.
fn time_arith_hits(masked: &str) -> Vec<(usize, String)> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_char(bytes[i]) || bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        let ident = &masked[start..i];
        if is_time_name(ident) && (op_follows(bytes, i) || op_precedes(bytes, start)) {
            hits.push((start, ident.to_string()));
        }
    }
    hits
}

/// True when the next non-blank char after `i` is a binary arithmetic
/// operator (excluding `->` arrows).
fn op_follows(bytes: &[u8], mut i: usize) -> bool {
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
        i += 1;
    }
    match bytes.get(i) {
        Some(b'+') | Some(b'*') | Some(b'/') | Some(b'%') => true,
        Some(b'-') => bytes.get(i + 1) != Some(&b'>'),
        _ => false,
    }
}

/// True when the identifier starting at `start` is the right operand of a
/// binary arithmetic operator — i.e. the previous non-blank char is an
/// operator whose own left side is a value (distinguishing `a * x_ns`
/// from a deref `*x_ns`).
fn op_precedes(bytes: &[u8], start: usize) -> bool {
    let mut i = start;
    while i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let op = bytes[i - 1];
    if !matches!(op, b'+' | b'-' | b'*' | b'/' | b'%') {
        return false;
    }
    let mut j = i - 1;
    while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\t') {
        j -= 1;
    }
    j > 0 && (is_ident_char(bytes[j - 1]) || bytes[j - 1] == b')' || bytes[j - 1] == b']')
}

/// Cap snippets so the table stays readable.
fn truncate(s: &str) -> String {
    const MAX: usize = 120;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, crate_dir: &str, is_lib: bool, is_root: bool) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_file(
            &FileInput {
                rel_path: "crates/x/src/lib.rs",
                crate_dir,
                is_lib_crate: is_lib,
                is_lib_root: is_root,
                original: src,
            },
            &mut out,
        );
        out
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn d1_flags_wall_clock_not_comments() {
        let d = lint(
            "use std::time::Instant;\n// Instant in prose\n",
            "storage",
            true,
            false,
        );
        assert_eq!(rules(&d), vec!["D1"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn d2_flags_thread_rng() {
        let d = lint("let x = rand::thread_rng();\n", "workload", true, false);
        assert_eq!(rules(&d), vec!["D2"]);
    }

    #[test]
    fn d3_only_fires_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&lint(src, "exec", true, false)), vec!["D3"]);
        assert!(lint(src, "workload", true, false).is_empty());
    }

    #[test]
    fn d4_flags_raw_time_arithmetic() {
        let d = lint(
            "let t = base_ns * 3;\nlet u = 2 + seek_time;\n",
            "device",
            true,
            false,
        );
        assert_eq!(rules(&d), vec!["D4", "D4"]);
    }

    #[test]
    fn d4_ignores_method_calls_and_derefs() {
        let src = "let a = c.latency();\nlet b = *wait_ns;\nfn f(x_ns: u64) -> u64 { x_ns }\n";
        assert!(lint(src, "device", true, false).is_empty());
    }

    #[test]
    fn d7_flags_os_threads_in_sim_crates_only() {
        let src =
            "pub fn go() -> std::thread::JoinHandle<()> {\n    std::thread::spawn(|| {})\n}\n";
        let diags = lint(src, "exec", true, false);
        let fired = rules(&diags);
        assert!(
            fired.iter().all(|&r| r == "D7") && fired.len() >= 2,
            "expected only D7 findings: {fired:?}"
        );
        // Harness crates may use real threads.
        assert!(lint(src, "workload", true, false).is_empty());
        assert!(lint(src, "repro", false, false).is_empty());
    }

    #[test]
    fn d7_ignores_virtual_thread_names_and_comments() {
        // `Threads` (the calibration driver enum) and prose mentions must
        // not trip the OS-thread rule.
        let src = "pub enum Method { Threads }\n// a thread of execution in prose\n";
        assert!(lint(src, "core", true, false).is_empty());
    }

    #[test]
    fn d5_flags_unwrap_and_panics_in_lib_crates_only() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\nfn g() { panic!(\"boom\") }\n";
        assert_eq!(rules(&lint(src, "storage", true, false)), vec!["D5", "D5"]);
        assert!(lint(src, "repro", false, false).is_empty());
    }

    #[test]
    fn d5_accepts_descriptive_expect_rejects_terse() {
        let good = "fn f(v: Option<u32>) -> u32 { v.expect(\"frame table lost a pinned page\") }\n";
        assert!(lint(good, "bufpool", true, false).is_empty());
        let bad = "fn f(v: Option<u32>) -> u32 { v.expect(\"bad\") }\n";
        assert_eq!(rules(&lint(bad, "bufpool", true, false)), vec!["D5"]);
    }

    #[test]
    fn d5_ignores_unwrap_or_variants() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
        assert!(lint(src, "storage", true, false).is_empty());
    }

    #[test]
    fn test_region_is_exempt_from_d1_through_d5() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn f(v: Option<u32>) -> u32 { v.unwrap() }\n}\n";
        assert!(lint(src, "exec", true, false).is_empty());
    }

    #[test]
    fn d6_requires_both_attributes() {
        let d = lint(
            "//! Docs.\n#![warn(missing_docs)]\npub fn f() {}\n",
            "storage",
            true,
            true,
        );
        assert_eq!(rules(&d), vec!["D6"]);
        assert!(d[0].message.contains("forbid(unsafe_code)"));
        let clean = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(lint(clean, "storage", true, true).is_empty());
    }
}
