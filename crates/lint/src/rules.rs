//! The determinism and unit-safety rules (D1-D11).
//!
//! Every rule scans the masked source (see [`crate::lexer`]) so that
//! comments and string literals never trigger findings. Rules other than
//! D6 skip the trailing `#[cfg(test)]` region of a file; by workspace
//! convention test modules come last, and the lint treats everything from
//! the first `#[cfg(test)]` attribute to end-of-file as test code.
//!
//! D1-D7 are token-level scans. D8-D11 are flow-sensitive: they run on
//! the [`crate::syntax`] structural view (functions, loops, `let`
//! bindings, typed identifiers) and, for D9, the per-function
//! [`crate::cfg`] control-flow graph. D4 also consults the syntax layer:
//! identifiers declared `SimTime`/`SimDuration` are unit-safe by
//! construction and are exempt from the textual arithmetic check.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D1   | No wall-clock types (`Instant`, `SystemTime`) — virtual time only |
//! | D2   | No ambient entropy (`thread_rng`, `OsRng`, ...) — seeded `SimRng` only |
//! | D3   | No `HashMap`/`HashSet` in simulation crates — iteration order leaks |
//! | D4   | No raw arithmetic on time-named bindings — use `SimTime`/`SimDuration` |
//! | D5   | No panics in library crates (`unwrap`, `panic!`, ...) — return errors |
//! | D6   | Library crates declare `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | D7   | No OS threads in simulation crates — concurrency is modeled in virtual time |
//! | D8   | RNG stream discipline — no `.clone()` of an RNG, no forking a stream that is also passed `&mut` in the same loop, no reuse of one stream across session iterations |
//! | D9   | Must-release — a lease bound from `.acquire()` is released/returned on every exit path, including `?`-early-returns |
//! | D10  | Sim-time causality — no `schedule`/`complete_at` argument that traces to `now - x` |
//! | D11  | No internal calls to `#[deprecated]` items outside test code |

use crate::cfg::Cfg;
use crate::diag::Diagnostic;
use crate::flow;
use crate::lexer::is_ident_char;
use crate::syntax::{Syntax, TokKind};

/// All rule identifiers, in severity-agnostic lexical order.
pub const RULE_IDS: &[&str] = &[
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "D11",
];

/// Crates whose code runs inside the deterministic simulation; D3/D4
/// apply only here (matching the `crates/<name>` directory name).
pub const SIM_CRATES: &[&str] = &[
    "simkit",
    "device",
    "exec",
    "bufpool",
    "core",
    "optimizer",
    "obs",
];

/// Shortest `.expect("...")` message D5 accepts as descriptive.
const MIN_EXPECT_MESSAGE: usize = 10;

/// Workspace-wide facts gathered in a first pass, consumed by rules that
/// need cross-file context (currently D11's deprecated-item set).
#[derive(Debug, Clone, Default)]
pub struct WorkspaceInfo {
    /// Every `#[deprecated]` fn in the workspace, as
    /// `(impl type if a method, name)`. Methods are matched only as
    /// `Type::name(` so an unrelated `Other::name` never trips D11.
    pub deprecated: std::collections::BTreeSet<(Option<String>, String)>,
}

impl WorkspaceInfo {
    /// Record the deprecated items declared in one file.
    pub fn collect(&mut self, original: &str) {
        let masked = crate::lexer::mask_source(original);
        let syn = Syntax::parse(&masked);
        for d in &syn.deprecated {
            self.deprecated
                .insert((d.impl_type.clone(), d.name.clone()));
        }
    }
}

/// One source file plus the crate facts the rules need.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: &'a str,
    /// Directory name of the owning crate under `crates/`.
    pub crate_dir: &'a str,
    /// True when the owning crate has a `src/lib.rs` (library crate).
    pub is_lib_crate: bool,
    /// True when this file *is* the crate's `src/lib.rs`.
    pub is_lib_root: bool,
    /// Full original source text.
    pub original: &'a str,
}

/// Byte offsets of line starts, for offset→line mapping.
struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(text: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line number containing byte `offset`.
    fn line_of(&self, offset: usize) -> u64 {
        match self.starts.binary_search(&offset) {
            Ok(i) => i as u64 + 1,
            Err(i) => i as u64,
        }
    }

    /// The original text of the line containing byte `offset`, trimmed.
    fn snippet<'a>(&self, text: &'a str, offset: usize) -> &'a str {
        let line = self.line_of(offset) as usize - 1;
        let start = self.starts[line];
        let end = self
            .starts
            .get(line + 1)
            .map(|e| e - 1)
            .unwrap_or(text.len());
        text[start..end].trim()
    }
}

/// Run every applicable rule over one file, appending findings.
pub fn check_file(input: &FileInput<'_>, ws: &WorkspaceInfo, out: &mut Vec<Diagnostic>) {
    let masked = crate::lexer::mask_source(input.original);
    let syn = Syntax::parse(&masked);
    let lines = LineIndex::new(&masked);
    let test_start = test_region_start(&masked).unwrap_or(usize::MAX);

    let mut emit = |rule: &str, offset: usize, message: String| {
        out.push(Diagnostic {
            rule: rule.to_string(),
            path: input.rel_path.to_string(),
            line: lines.line_of(offset),
            message,
            snippet: truncate(lines.snippet(input.original, offset)),
        });
    };

    // D1: wall-clock types.
    for token in ["Instant", "SystemTime"] {
        for off in word_hits(&masked, token) {
            if off >= test_start {
                continue;
            }
            emit(
                "D1",
                off,
                format!("wall-clock type `{token}`: simulated code must use SimTime/SimDuration"),
            );
        }
    }

    // D2: ambient entropy.
    for token in [
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
    ] {
        for off in word_hits(&masked, token) {
            if off >= test_start {
                continue;
            }
            emit(
                "D2",
                off,
                format!("ambient entropy `{token}`: randomness must flow through a seeded SimRng"),
            );
        }
    }

    let is_sim = SIM_CRATES.contains(&input.crate_dir);

    // D3: hash-ordered collections in simulation crates.
    if is_sim {
        for token in ["HashMap", "HashSet"] {
            for off in word_hits(&masked, token) {
                if off >= test_start {
                    continue;
                }
                emit(
                    "D3",
                    off,
                    format!(
                        "`{token}` in simulation crate: iteration order is seed-independent; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                );
            }
        }
    }

    // D4: raw arithmetic on time-named bindings. Identifiers the syntax
    // layer saw declared as SimTime/SimDuration are unit-safe already —
    // the wrapper's operator overloads enforce the units — so only
    // untyped (raw-integer) time names are flagged.
    if is_sim {
        for (off, ident) in time_arith_hits(&masked) {
            if off >= test_start || syn.time_typed.contains(&ident) {
                continue;
            }
            emit(
                "D4",
                off,
                format!(
                    "raw arithmetic on time-named binding `{ident}`: \
                     wrap it in SimTime/SimDuration so units cannot mix"
                ),
            );
        }
    }

    // D7: OS threading primitives in simulation crates. Harness crates
    // (repro, bench, workload) may spawn real threads freely; inside the
    // simulation, concurrency must be modeled in virtual time, and the
    // only sanctioned real-thread site is `simkit::par` (allowlisted in
    // lint.toml with its determinism argument).
    if is_sim {
        for token in ["thread", "spawn", "JoinHandle"] {
            for off in word_hits(&masked, token) {
                if off >= test_start {
                    continue;
                }
                emit(
                    "D7",
                    off,
                    format!(
                        "OS thread primitive `{token}` in simulation crate: model concurrency \
                         in virtual time; real threads belong to the harness (simkit::par)"
                    ),
                );
            }
        }
    }

    // D5: panics in library crates.
    if input.is_lib_crate {
        for off in word_hits(&masked, "unwrap") {
            if off >= test_start || !is_method_call(&masked, off, "unwrap") {
                continue;
            }
            emit(
                "D5",
                off,
                "bare `.unwrap()` in library crate: return an error or use a descriptive `.expect()`"
                    .to_string(),
            );
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            for off in word_hits(&masked, mac) {
                if off >= test_start {
                    continue;
                }
                if masked[off + mac.len()..].starts_with('!') {
                    emit(
                        "D5",
                        off,
                        format!("`{mac}!` in library crate: return an error instead of panicking"),
                    );
                }
            }
        }
        for off in word_hits(&masked, "expect") {
            if off >= test_start || !is_method_call(&masked, off, "expect") {
                continue;
            }
            if let Some(len) = expect_message_len(input.original, &masked, off) {
                if len < MIN_EXPECT_MESSAGE {
                    emit(
                        "D5",
                        off,
                        format!(
                            "`.expect()` message is only {len} chars: describe the violated \
                             invariant (>= {MIN_EXPECT_MESSAGE} chars)"
                        ),
                    );
                }
            }
        }
    }

    // D6: mandatory crate-root hygiene attributes.
    if input.is_lib_root {
        let squashed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
        for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !squashed.contains(attr) {
                emit("D6", 0, format!("library crate root is missing `{attr}`"));
            }
        }
    }

    // Flow-sensitive rules on the syntax/CFG layers.
    if is_sim {
        d8_rng_discipline(&masked, &syn, test_start, &mut emit);
        d9_must_release(&masked, &syn, test_start, &mut emit);
        d10_causality(&masked, &syn, test_start, &mut emit);
    }
    d11_deprecated_calls(&masked, &syn, ws, test_start, &mut emit);
}

/// True when an identifier names an RNG stream.
fn is_rng_name(ident: &str) -> bool {
    ident.to_ascii_lowercase().contains("rng")
}

/// D8: RNG stream discipline in simulation crates. Three shapes are
/// flagged: (a) `.clone()` of an RNG value — a cloned stream replays the
/// same draws, silently correlating two decision sequences; (b) one RNG
/// identifier both passed `&mut` into calls and `.fork()`ed inside the
/// same loop body — the fork salt then depends on how many draws the
/// callee made, coupling derived streams to call order; (c) a loop over
/// sessions drawing from an RNG declared outside the loop — per-session
/// streams must be derived per iteration so session N's draws don't
/// depend on how much randomness sessions 0..N consumed.
fn d8_rng_discipline(
    masked: &str,
    syn: &Syntax,
    test_start: usize,
    emit: &mut impl FnMut(&str, usize, String),
) {
    let n = syn.tokens.len();
    // (a) `.clone()` on an rng-named receiver.
    for i in 0..n.saturating_sub(3) {
        if syn.tokens[i].start >= test_start {
            break;
        }
        let is_rng_ident =
            matches!(syn.tokens[i].kind, TokKind::Ident) && is_rng_name(syn.text(masked, i));
        if is_rng_ident
            && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'.'))
            && syn.is_word(masked, i + 2, "clone")
            && matches!(syn.tokens[i + 3].kind, TokKind::Punct(b'('))
        {
            emit(
                "D8",
                syn.tokens[i].start,
                format!(
                    "`{}.clone()` duplicates an RNG stream: the copy replays identical draws; \
                     derive an independent stream with SimRng::derive or .fork instead",
                    syn.text(masked, i)
                ),
            );
        }
    }
    for l in &syn.loops {
        let body = syn.blocks[l.body];
        let (bstart, bend) = (body.open + 1, body.close.min(n));
        if bstart < n && syn.tokens[bstart].start >= test_start {
            continue;
        }
        // (b) same RNG borrowed &mut into calls AND forked in one body.
        let mut borrowed: Vec<&str> = Vec::new();
        let mut forked: Vec<(usize, &str)> = Vec::new();
        for i in bstart..bend {
            if matches!(syn.tokens[i].kind, TokKind::Punct(b'&'))
                && i + 2 < bend
                && syn.is_word(masked, i + 1, "mut")
                && matches!(syn.tokens[i + 2].kind, TokKind::Ident)
                && is_rng_name(syn.text(masked, i + 2))
            {
                borrowed.push(syn.text(masked, i + 2));
            }
            if matches!(syn.tokens[i].kind, TokKind::Ident)
                && is_rng_name(syn.text(masked, i))
                && i + 2 < bend
                && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'.'))
                && syn.is_word(masked, i + 2, "fork")
            {
                forked.push((i, syn.text(masked, i)));
            }
        }
        for (i, name) in &forked {
            if borrowed.contains(name) && syn.tokens[*i].start < test_start {
                emit(
                    "D8",
                    syn.tokens[*i].start,
                    format!(
                        "RNG `{name}` is both passed `&mut` and forked inside one loop body: \
                         the fork salt depends on the callee's draw count; derive child \
                         streams from a stable (seed, index) pair instead"
                    ),
                );
            }
        }
        // (c) session loops drawing from a stream declared outside.
        let header_mentions_session = (l.header_start..l.header_end.min(n)).any(|i| {
            matches!(syn.tokens[i].kind, TokKind::Ident)
                && syn.text(masked, i).to_ascii_lowercase().contains("session")
        });
        if !header_mentions_session {
            continue;
        }
        for i in bstart..bend {
            if syn.tokens[i].start >= test_start {
                break;
            }
            if !matches!(syn.tokens[i].kind, TokKind::Ident) || !is_rng_name(syn.text(masked, i)) {
                continue;
            }
            // Only variable uses: skip fields (`sess.rng`) and declarations.
            let after_decl_mut = i > 0
                && syn.is_word(masked, i - 1, "mut")
                && !(i > 1 && matches!(syn.tokens[i - 2].kind, TokKind::Punct(b'&')));
            if i > 0
                && (matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'.'))
                    || matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'|'))
                    || syn.is_word(masked, i - 1, "let")
                    || after_decl_mut
                    || syn.is_word(masked, i - 1, "fn"))
            {
                continue;
            }
            // A draw is a method call or a &mut borrow of the stream.
            let used = (i + 1 < n && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'.')))
                || (i > 0 && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'&')))
                || (i > 1
                    && syn.is_word(masked, i - 1, "mut")
                    && matches!(syn.tokens[i - 2].kind, TokKind::Punct(b'&')));
            if !used {
                continue;
            }
            let name = syn.text(masked, i);
            let declared_inside = syn
                .lets
                .iter()
                .any(|lb| lb.name == name && bstart <= lb.name_tok && lb.name_tok < bend);
            if !declared_inside {
                emit(
                    "D8",
                    syn.tokens[i].start,
                    format!(
                        "RNG `{name}` is reused across session-loop iterations: derive a \
                         fresh per-session stream (SimRng::derive(seed, session)) inside \
                         the loop so sessions stay statistically independent"
                    ),
                );
                break; // one finding per loop is enough
            }
        }
    }
}

/// D9: must-release analysis. Every `let x = <expr>.acquire(...)` binding
/// in a simulation crate must have `x` consumed (released, returned, or
/// moved into a store) on every path to the function exit — including the
/// implicit exits that `?` inserts. This is the static form of
/// `QdBudget`'s debug-assert double-release check: the runtime assert
/// catches a double release, this catches a missing one.
fn d9_must_release(
    masked: &str,
    syn: &Syntax,
    test_start: usize,
    emit: &mut impl FnMut(&str, usize, String),
) {
    for lb in &syn.lets {
        if syn.tokens[lb.name_tok].start >= test_start {
            continue;
        }
        let acquires = (lb.rhs_start..lb.rhs_end.min(syn.tokens.len())).any(|i| {
            syn.is_word(masked, i, "acquire")
                && i > 0
                && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'.'))
                && i + 1 < syn.tokens.len()
                && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'('))
        });
        if !acquires {
            continue;
        }
        let Some(f) = syn.enclosing_fn(lb.name_tok) else {
            continue;
        };
        let cfg = Cfg::build(masked, syn, f.body);
        let Some(bind_node) = cfg.node_containing(lb.name_tok) else {
            continue;
        };
        let consumed = |node: usize| {
            let nd = cfg.nodes[node];
            (nd.start..nd.end.min(syn.tokens.len()))
                .any(|i| i != lb.name_tok && flow::is_consuming_use(syn, masked, i, &lb.name))
        };
        if flow::reaches_exit_unconsumed(&cfg, bind_node, consumed) {
            emit(
                "D9",
                syn.tokens[lb.name_tok].start,
                format!(
                    "lease `{}` acquired here can reach a fn exit without being released or \
                     returned (check ?-early-returns and conditional branches)",
                    lb.name
                ),
            );
        }
    }
}

/// Scheduling calls whose first argument D10 inspects.
const D10_SCHEDULING_CALLS: &[&str] = &["schedule", "schedule_timer", "complete_at"];

/// D10: sim-time causality. A `schedule`/`schedule_timer`/`complete_at`
/// call whose time argument contains `now - x` — directly or through the
/// `let` bindings feeding it — would fire an event in the past, which the
/// event queue rejects at runtime; this catches it at lint time with the
/// expression context the old token-level D4 lacked.
fn d10_causality(
    masked: &str,
    syn: &Syntax,
    test_start: usize,
    emit: &mut impl FnMut(&str, usize, String),
) {
    let n = syn.tokens.len();
    for i in 0..n {
        if syn.tokens[i].start >= test_start {
            break;
        }
        if !matches!(syn.tokens[i].kind, TokKind::Ident) {
            continue;
        }
        let name = syn.text(masked, i);
        if !D10_SCHEDULING_CALLS.contains(&name) {
            continue;
        }
        // Call sites only: `recv.schedule(...)`, never the fn declaration.
        let is_call = i > 0
            && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'.'))
            && i + 1 < n
            && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'('));
        if !is_call {
            continue;
        }
        // First argument: tokens up to the `,` or `)` at depth 0.
        let mut depth = 0i32;
        let mut j = i + 2;
        let arg_start = j;
        while j < n {
            match syn.tokens[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(b',') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if flow::traces_to_now_minus(syn, masked, arg_start, j, 3) {
            emit(
                "D10",
                syn.tokens[i].start,
                format!(
                    "time argument of `.{name}()` traces to `now - ...`: an event scheduled \
                     before the current instant breaks causality (the queue panics at runtime)"
                ),
            );
        }
    }
}

/// D11: no internal calls to `#[deprecated]` items outside test code.
/// Free functions match as bare `name(...)` calls; methods declared in an
/// `impl Type` block match only as `Type::name(...)`, so an unrelated
/// type's method with the same name never trips.
fn d11_deprecated_calls(
    masked: &str,
    syn: &Syntax,
    ws: &WorkspaceInfo,
    test_start: usize,
    emit: &mut impl FnMut(&str, usize, String),
) {
    if ws.deprecated.is_empty() {
        return;
    }
    let n = syn.tokens.len();
    for i in 0..n {
        if syn.tokens[i].start >= test_start {
            break;
        }
        if !matches!(syn.tokens[i].kind, TokKind::Ident) {
            continue;
        }
        let name = syn.text(masked, i);
        let is_open = i + 1 < n && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'('));
        if !is_open {
            continue;
        }
        // Declarations (`fn name(`) and method calls on other receivers
        // (`x.name(`) are not matched; D11 targets direct invocations.
        if i > 0 && (syn.is_word(masked, i - 1, "fn")) {
            continue;
        }
        let after_dot = i > 0 && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'.'));
        let qualifier = if i >= 3
            && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b':'))
            && matches!(syn.tokens[i - 2].kind, TokKind::Punct(b':'))
            && matches!(syn.tokens[i - 3].kind, TokKind::Ident)
        {
            Some(syn.text(masked, i - 3))
        } else {
            None
        };
        let hit = ws.deprecated.iter().any(|(ty, dep_name)| {
            if dep_name != name {
                return false;
            }
            match ty {
                Some(ty) => qualifier == Some(ty.as_str()),
                None => !after_dot,
            }
        });
        if hit {
            let shown = match qualifier {
                Some(q) => format!("{q}::{name}"),
                None => name.to_string(),
            };
            emit(
                "D11",
                syn.tokens[i].start,
                format!(
                    "call to #[deprecated] `{shown}`: migrate to the supported API \
                     (deprecated shims exist only for external callers and will be removed)"
                ),
            );
        }
    }
}

/// Byte offset where the trailing `#[cfg(test)]` region begins, if any.
fn test_region_start(masked: &str) -> Option<usize> {
    let mut offset = 0;
    for line in masked.split_inclusive('\n') {
        let squashed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        if squashed.contains("#[cfg(test)]") {
            return Some(offset);
        }
        offset += line.len();
    }
    None
}

/// All word-boundary occurrences of `token` in `text`.
fn word_hits(text: &str, token: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        let off = from + pos;
        let before_ok = off == 0 || !is_ident_char(bytes[off - 1]);
        let after = off + token.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            hits.push(off);
        }
        from = off + token.len();
    }
    hits
}

/// True when the identifier at `off` is invoked as `.name(` — a method
/// call, as opposed to a standalone function or a path segment.
fn is_method_call(masked: &str, off: usize, name: &str) -> bool {
    let bytes = masked.as_bytes();
    if off == 0 || bytes[off - 1] != b'.' {
        return false;
    }
    let mut i = off + name.len();
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t' || bytes[i] == b'\n') {
        i += 1;
    }
    i < bytes.len() && bytes[i] == b'('
}

/// Character length of the string literal passed to `.expect(` at `off`,
/// or `None` when the argument is not a string literal.
fn expect_message_len(original: &str, masked: &str, off: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let mut i = off + "expect".len();
    while i < bytes.len() && bytes[i] != b'(' {
        i += 1;
    }
    i += 1;
    let orig = original.as_bytes();
    while i < orig.len() && (orig[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= orig.len() || orig[i] != b'"' {
        return None;
    }
    i += 1;
    let start = i;
    let mut len = 0usize;
    while i < orig.len() {
        match orig[i] {
            b'\\' => {
                len += 1;
                i += 2;
            }
            b'"' => return Some(len),
            _ => {
                len += 1;
                i += 1;
            }
        }
    }
    Some(i - start)
}

/// True when an identifier names a raw time quantity D4 protects.
fn is_time_name(ident: &str) -> bool {
    ident.ends_with("_ns") || ident.ends_with("_time") || ident == "deadline" || ident == "latency"
}

/// Offsets (and names) of time-named identifiers used as operands of raw
/// `+ - * / %` arithmetic.
fn time_arith_hits(masked: &str) -> Vec<(usize, String)> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_char(bytes[i]) || bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        let ident = &masked[start..i];
        if is_time_name(ident) && (op_follows(bytes, i) || op_precedes(bytes, start)) {
            hits.push((start, ident.to_string()));
        }
    }
    hits
}

/// True when the next non-blank char after `i` is a binary arithmetic
/// operator (excluding `->` arrows).
fn op_follows(bytes: &[u8], mut i: usize) -> bool {
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
        i += 1;
    }
    match bytes.get(i) {
        Some(b'+') | Some(b'*') | Some(b'/') | Some(b'%') => true,
        Some(b'-') => bytes.get(i + 1) != Some(&b'>'),
        _ => false,
    }
}

/// True when the identifier starting at `start` is the right operand of a
/// binary arithmetic operator — i.e. the previous non-blank char is an
/// operator whose own left side is a value (distinguishing `a * x_ns`
/// from a deref `*x_ns`).
fn op_precedes(bytes: &[u8], start: usize) -> bool {
    let mut i = start;
    while i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let op = bytes[i - 1];
    if !matches!(op, b'+' | b'-' | b'*' | b'/' | b'%') {
        return false;
    }
    let mut j = i - 1;
    while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\t') {
        j -= 1;
    }
    j > 0 && (is_ident_char(bytes[j - 1]) || bytes[j - 1] == b')' || bytes[j - 1] == b']')
}

/// Cap snippets so the table stays readable.
fn truncate(s: &str) -> String {
    const MAX: usize = 120;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, crate_dir: &str, is_lib: bool, is_root: bool) -> Vec<Diagnostic> {
        lint_ws(src, crate_dir, is_lib, is_root, &WorkspaceInfo::default())
    }

    fn lint_ws(
        src: &str,
        crate_dir: &str,
        is_lib: bool,
        is_root: bool,
        ws: &WorkspaceInfo,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_file(
            &FileInput {
                rel_path: "crates/x/src/lib.rs",
                crate_dir,
                is_lib_crate: is_lib,
                is_lib_root: is_root,
                original: src,
            },
            ws,
            &mut out,
        );
        out
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn d1_flags_wall_clock_not_comments() {
        let d = lint(
            "use std::time::Instant;\n// Instant in prose\n",
            "storage",
            true,
            false,
        );
        assert_eq!(rules(&d), vec!["D1"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn d2_flags_thread_rng() {
        let d = lint("let x = rand::thread_rng();\n", "workload", true, false);
        assert_eq!(rules(&d), vec!["D2"]);
    }

    #[test]
    fn d3_only_fires_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&lint(src, "exec", true, false)), vec!["D3"]);
        assert!(lint(src, "workload", true, false).is_empty());
    }

    #[test]
    fn d4_flags_raw_time_arithmetic() {
        let d = lint(
            "let t = base_ns * 3;\nlet u = 2 + seek_time;\n",
            "device",
            true,
            false,
        );
        assert_eq!(rules(&d), vec!["D4", "D4"]);
    }

    #[test]
    fn d4_ignores_method_calls_and_derefs() {
        let src = "let a = c.latency();\nlet b = *wait_ns;\nfn f(x_ns: u64) -> u64 { x_ns }\n";
        assert!(lint(src, "device", true, false).is_empty());
    }

    #[test]
    fn d7_flags_os_threads_in_sim_crates_only() {
        let src =
            "pub fn go() -> std::thread::JoinHandle<()> {\n    std::thread::spawn(|| {})\n}\n";
        let diags = lint(src, "exec", true, false);
        let fired = rules(&diags);
        assert!(
            fired.iter().all(|&r| r == "D7") && fired.len() >= 2,
            "expected only D7 findings: {fired:?}"
        );
        // Harness crates may use real threads.
        assert!(lint(src, "workload", true, false).is_empty());
        assert!(lint(src, "repro", false, false).is_empty());
    }

    #[test]
    fn d7_ignores_virtual_thread_names_and_comments() {
        // `Threads` (the calibration driver enum) and prose mentions must
        // not trip the OS-thread rule.
        let src = "pub enum Method { Threads }\n// a thread of execution in prose\n";
        assert!(lint(src, "core", true, false).is_empty());
    }

    #[test]
    fn d5_flags_unwrap_and_panics_in_lib_crates_only() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\nfn g() { panic!(\"boom\") }\n";
        assert_eq!(rules(&lint(src, "storage", true, false)), vec!["D5", "D5"]);
        assert!(lint(src, "repro", false, false).is_empty());
    }

    #[test]
    fn d5_accepts_descriptive_expect_rejects_terse() {
        let good = "fn f(v: Option<u32>) -> u32 { v.expect(\"frame table lost a pinned page\") }\n";
        assert!(lint(good, "bufpool", true, false).is_empty());
        let bad = "fn f(v: Option<u32>) -> u32 { v.expect(\"bad\") }\n";
        assert_eq!(rules(&lint(bad, "bufpool", true, false)), vec!["D5"]);
    }

    #[test]
    fn d5_ignores_unwrap_or_variants() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
        assert!(lint(src, "storage", true, false).is_empty());
    }

    #[test]
    fn test_region_is_exempt_from_d1_through_d5() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn f(v: Option<u32>) -> u32 { v.unwrap() }\n}\n";
        assert!(lint(src, "exec", true, false).is_empty());
    }

    #[test]
    fn d4_exempts_simtime_typed_identifiers() {
        // `issue_time` is declared SimTime, so its arithmetic goes through
        // the wrapper's operators — the textual rule must stay quiet.
        let src = "struct S { issue_time: SimTime }\n\
                   fn f(st: &S, grace: SimDuration) -> SimTime { st.issue_time + grace }\n";
        assert!(lint(src, "exec", true, false).is_empty());
        // The same name without the annotation is still raw arithmetic.
        let raw = "fn f(issue_time: u64, grace: u64) -> u64 { issue_time + grace }\n";
        assert_eq!(rules(&lint(raw, "exec", true, false)), vec!["D4"]);
    }

    #[test]
    fn d8_flags_rng_clone_not_other_clones() {
        let bad = "fn f(rng: &SimRng) { let r2 = rng.clone(); }\n";
        assert_eq!(rules(&lint(bad, "exec", true, false)), vec!["D8"]);
        let ok = "fn f(plan: &Plan) { let p2 = plan.clone(); }\n";
        assert!(lint(ok, "exec", true, false).is_empty());
    }

    #[test]
    fn d8_flags_borrow_plus_fork_in_one_loop() {
        let bad = "fn f(rng: &mut SimRng) {\n    for i in 0..4 {\n        draw(&mut rng);\n        let child = rng.fork(i);\n        run(child);\n    }\n}\n";
        assert_eq!(rules(&lint(bad, "exec", true, false)), vec!["D8"]);
        // Fork alone (no &mut passing in the same body) is the sanctioned
        // derivation pattern.
        let ok = "fn f(rng: &mut SimRng) {\n    for i in 0..4 {\n        let child = rng.fork(i);\n        run(child);\n    }\n}\n";
        assert!(lint(ok, "exec", true, false).is_empty());
    }

    #[test]
    fn d8_flags_rng_reuse_across_session_loop() {
        let bad = "fn f(seed: u64, sessions: u64) {\n    let mut rng = SimRng::seeded(seed);\n    for s in 0..sessions {\n        let think = sample(&mut rng);\n        run(s, think);\n    }\n}\n";
        assert_eq!(rules(&lint(bad, "exec", true, false)), vec!["D8"]);
        // Deriving a fresh stream inside the loop is the blessed shape.
        let ok = "fn f(seed: u64, sessions: u64) {\n    for s in 0..sessions {\n        let mut rng = SimRng::derive(seed, s);\n        let think = sample(&mut rng);\n        run(s, think);\n    }\n}\n";
        assert!(lint(ok, "exec", true, false).is_empty());
    }

    #[test]
    fn d9_flags_leaked_lease_on_early_return() {
        let bad = "fn f(b: &mut QdBudget) -> Result<(), E> {\n    let lease = b.acquire();\n    submit()?;\n    b.release(lease);\n    Ok(())\n}\n";
        assert_eq!(rules(&lint(bad, "optimizer", true, false)), vec!["D9"]);
        let ok = "fn f(b: &mut QdBudget) {\n    let lease = b.acquire();\n    submit();\n    b.release(lease);\n}\n";
        assert!(lint(ok, "optimizer", true, false).is_empty());
    }

    #[test]
    fn d9_accepts_lease_returned_or_stored() {
        let stored = "fn f(&mut self) {\n    let lease = self.budget.acquire();\n    self.leases.insert(self.id, lease);\n}\n";
        assert!(lint(stored, "optimizer", true, false).is_empty());
        let returned =
            "fn f(b: &mut QdBudget) -> QdLease {\n    let lease = b.acquire();\n    lease\n}\n";
        assert!(lint(returned, "optimizer", true, false).is_empty());
    }

    #[test]
    fn d10_flags_now_minus_through_bindings() {
        let direct = "fn f(&mut self) { self.queue.schedule(self.now() - lag, ev); }\n";
        assert_eq!(rules(&lint(direct, "simkit", true, false)), vec!["D10"]);
        let traced = "fn f(&mut self, now: SimTime, lag: SimDuration) {\n    let due = now - lag;\n    self.queue.schedule(due, ev);\n}\n";
        assert_eq!(rules(&lint(traced, "simkit", true, false)), vec!["D10"]);
        let ok = "fn f(&mut self, now: SimTime, lag: SimDuration) {\n    let due = now + lag;\n    self.queue.schedule(due, ev);\n}\n";
        assert!(lint(ok, "simkit", true, false).is_empty());
    }

    #[test]
    fn d11_flags_calls_matching_deprecated_set() {
        let mut ws = WorkspaceInfo::default();
        ws.collect("#[deprecated]\npub fn run_fts(p: &Plan) { }\nimpl Db { #[deprecated]\npub fn create(c: Cfg) -> Db { x } }\n");
        assert_eq!(
            ws.deprecated.len(),
            2,
            "both deprecated items should be collected"
        );
        let bad = "fn go() { let r = run_fts(&plan); let d = Db::create(cfg); }\n";
        assert_eq!(
            rules(&lint_ws(bad, "workload", true, false, &ws)),
            vec!["D11", "D11"]
        );
        // Same method name on a different type is not the deprecated item,
        // and test-region calls are exempt.
        let ok = "fn go() { let t = HeapTable::create(cfg); }\n#[cfg(test)]\nmod tests { fn t() { let d = Db::create(cfg); } }\n";
        assert!(lint_ws(ok, "workload", true, false, &ws).is_empty());
    }

    #[test]
    fn d6_requires_both_attributes() {
        let d = lint(
            "//! Docs.\n#![warn(missing_docs)]\npub fn f() {}\n",
            "storage",
            true,
            true,
        );
        assert_eq!(rules(&d), vec!["D6"]);
        assert!(d[0].message.contains("forbid(unsafe_code)"));
        let clean = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(lint(clean, "storage", true, true).is_empty());
    }
}
