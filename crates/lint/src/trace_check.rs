//! Minimal schema validation for exported Chrome trace-event JSON.
//!
//! `repro --trace` and the workload capture harness emit Trace Event
//! Format documents that Perfetto consumes. CI validates those artifacts
//! with `pioqo-lint trace-check <file>`: the document must be an object
//! with a `traceEvents` array, and every event must carry `name`, `ph`,
//! `pid` and `tid`, a `ph` from the phase set the exporter is allowed to
//! produce, and a numeric `ts` (metadata events excepted). This is a
//! schema check, not a semantic one — span nesting and id matching are
//! the exporter's unit tests' job.

use serde::Content;

/// Phases the pioqo exporter may emit: metadata, duration begin/end,
/// async begin/end, instant, and counter.
const ALLOWED_PHASES: &[&str] = &["M", "B", "E", "b", "e", "i", "C"];

/// Validate one Chrome trace JSON document; returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<u64, String> {
    let doc = serde_json::from_str_content(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Content::Map(fields) = doc else {
        return Err("top level must be a JSON object".to_string());
    };
    let Some((_, events)) = fields.iter().find(|(k, _)| k == "traceEvents") else {
        return Err("missing \"traceEvents\" key".to_string());
    };
    let Content::Seq(events) = events else {
        return Err("\"traceEvents\" must be an array".to_string());
    };
    for (i, ev) in events.iter().enumerate() {
        validate_event(ev).map_err(|e| format!("traceEvents[{i}]: {e}"))?;
    }
    Ok(events.len() as u64)
}

fn validate_event(ev: &Content) -> Result<(), String> {
    let Content::Map(fields) = ev else {
        return Err("event must be an object".to_string());
    };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match get("name") {
        Some(Content::Str(_)) => {}
        Some(_) => return Err("\"name\" must be a string".to_string()),
        None => return Err("missing \"name\"".to_string()),
    }
    let phase = match get("ph") {
        Some(Content::Str(p)) => p.as_str(),
        Some(_) => return Err("\"ph\" must be a string".to_string()),
        None => return Err("missing \"ph\"".to_string()),
    };
    if !ALLOWED_PHASES.contains(&phase) {
        return Err(format!(
            "phase {phase:?} is not one of the exporter's phases {ALLOWED_PHASES:?}"
        ));
    }
    for key in ["pid", "tid"] {
        match get(key) {
            Some(Content::U64(_)) | Some(Content::I64(_)) => {}
            Some(_) => return Err(format!("{key:?} must be an integer")),
            None => return Err(format!("missing {key:?}")),
        }
    }
    // Metadata records name a process/thread; they carry no timestamp.
    if phase != "M" {
        match get("ts") {
            Some(Content::U64(_)) | Some(Content::I64(_)) | Some(Content::F64(_)) => {}
            Some(_) => return Err("\"ts\" must be a number".to_string()),
            None => return Err("missing \"ts\"".to_string()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_valid_document() {
        let doc = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"pioqo"}},
            {"name":"io_submit","ph":"b","cat":"io","id":3,"pid":1,"tid":0,"ts":12.5},
            {"name":"queue_depth","ph":"C","pid":1,"tid":0,"ts":13.0,"args":{"depth":4}}
        ]}"#;
        assert_eq!(validate_chrome_trace(doc), Ok(3));
    }

    #[test]
    fn rejects_missing_trace_events() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn rejects_unknown_phase_and_missing_fields() {
        let bad_phase = r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad_phase)
            .is_err_and(|e| e.contains("phase") && e.contains("traceEvents[0]")));
        let no_ts = r#"{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_ts).is_err_and(|e| e.contains("ts")));
        let no_tid = r#"{"traceEvents":[{"name":"x","ph":"M","pid":1}]}"#;
        assert!(validate_chrome_trace(no_tid).is_err_and(|e| e.contains("tid")));
    }

    #[test]
    fn metadata_events_need_no_timestamp() {
        let doc = r#"{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":7}]}"#;
        assert_eq!(validate_chrome_trace(doc), Ok(1));
    }
}
