//! Workspace determinism and unit-safety linter (`pioqo-lint`).
//!
//! The whole point of this workspace is that a seed reproduces a run
//! bit-for-bit; that property is easy to break silently (one `Instant::now`,
//! one `HashMap` iteration in a scheduling decision, one cloned RNG
//! stream). This crate is a purpose-built static-analysis pass that walks
//! every `.rs` file under `crates/` and enforces the project's
//! determinism invariants D1-D11 — see [`rules`] for the catalogue. D1-D7
//! are token-level scans; D8-D11 run on a lightweight syntax layer
//! ([`syntax`]) and per-function control-flow graphs ([`cfg`], [`flow`])
//! built from the same masked token stream — no rustc or syn dependency.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p pioqo-lint -- check              # human table, exit 1 on findings
//! cargo run -p pioqo-lint -- check --json       # machine-readable diagnostics
//! cargo run -p pioqo-lint -- check --sarif f    # SARIF 2.1.0 for CI annotation
//! cargo run -p pioqo-lint -- explain D9         # rule rationale
//! ```
//!
//! Deliberate exceptions live in `lint.toml` ([`config`]); each carries a
//! mandatory reason, and an entry that no longer suppresses any finding
//! is itself an error (stale suppressions hide regressions). Files under
//! `tests/`, `benches/`, and `examples/` directories are harness code and
//! are not scanned, and the trailing `#[cfg(test)]` region of a library
//! file is exempt from every rule except D6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod config;
pub mod diag;
pub mod explain;
pub mod flow;
pub mod lexer;
pub mod metrics_check;
pub mod rules;
pub mod syntax;
pub mod trace_check;

pub use config::{load_config, LintConfig, LintError};
pub use diag::{Diagnostic, Report};
pub use metrics_check::validate_prometheus;
pub use trace_check::validate_chrome_trace;

use std::path::{Path, PathBuf};

/// Directory names never descended into while scanning.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "fixtures", "tests", "benches", "examples",
];

/// Lint every crate under `<root>/crates/`, applying the allowlist.
///
/// Runs in two passes: the first gathers workspace-wide facts (the
/// `#[deprecated]` item set D11 matches against), the second applies
/// every rule per file. Diagnostics come back sorted by path, then line,
/// then rule, so output is stable across runs and platforms. Allowlist
/// entries that suppressed nothing are reported as stale — a stale entry
/// means the exception it documented no longer exists, and leaving it
/// around would silently swallow a future regression at that path.
pub fn check_workspace(root: &Path, config: &LintConfig) -> Result<Report, LintError> {
    let crates_dir = root.join("crates");
    let mut crate_dirs = list_dirs(&crates_dir)?;
    crate_dirs.sort();

    struct FileEntry {
        crate_name: String,
        is_lib_crate: bool,
        is_lib_root: bool,
        rel_path: String,
        original: String,
    }

    let mut entries = Vec::new();
    for crate_dir in &crate_dirs {
        let crate_name = file_name_str(crate_dir)?;
        let is_lib_crate = crate_dir.join("src").join("lib.rs").is_file();
        let mut files = Vec::new();
        collect_rs_files(crate_dir, &mut files)?;
        files.sort();
        for file in files {
            let original = std::fs::read_to_string(&file)
                .map_err(|e| LintError(format!("cannot read {}: {e}", file.display())))?;
            let rel_path = relative_path(root, &file)?;
            let is_lib_root = is_lib_crate && rel_path.ends_with("/src/lib.rs");
            entries.push(FileEntry {
                crate_name: crate_name.clone(),
                is_lib_crate,
                is_lib_root,
                rel_path,
                original,
            });
        }
    }

    let mut ws = rules::WorkspaceInfo::default();
    for entry in &entries {
        ws.collect(&entry.original);
    }

    let mut diagnostics = Vec::new();
    let mut entry_used = vec![false; config.allow.len()];
    for entry in &entries {
        let mut found = Vec::new();
        rules::check_file(
            &rules::FileInput {
                rel_path: &entry.rel_path,
                crate_dir: &entry.crate_name,
                is_lib_crate: entry.is_lib_crate,
                is_lib_root: entry.is_lib_root,
                original: &entry.original,
            },
            &ws,
            &mut found,
        );
        for d in found {
            match config.matching_entry(&d.rule, &d.path) {
                Some(idx) => entry_used[idx] = true,
                None => diagnostics.push(d),
            }
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    let stale_allows = config
        .allow
        .iter()
        .zip(&entry_used)
        .filter(|(_, used)| !**used)
        .map(|(e, _)| format!("{} {}", e.rule, e.path))
        .collect();
    Ok(Report {
        files_checked: entries.len() as u64,
        diagnostics,
        stale_allows,
    })
}

/// Immediate subdirectories of `dir`.
fn list_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    Ok(out)
}

/// Recursively gather `.rs` files, skipping [`SKIP_DIRS`] and dotdirs.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = file_name_str(&path)?;
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Final path component as UTF-8.
fn file_name_str(path: &Path) -> Result<String, LintError> {
    path.file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.to_string())
        .ok_or_else(|| LintError(format!("non-UTF-8 path: {}", path.display())))
}

/// `file` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, file: &Path) -> Result<String, LintError> {
    let rel = file
        .strip_prefix(root)
        .map_err(|_| LintError(format!("{} is outside {}", file.display(), root.display())))?;
    let mut parts = Vec::new();
    for comp in rel.components() {
        let s = comp
            .as_os_str()
            .to_str()
            .ok_or_else(|| LintError(format!("non-UTF-8 path: {}", file.display())))?;
        parts.push(s);
    }
    Ok(parts.join("/"))
}
