//! Workspace determinism and unit-safety linter (`pioqo-lint`).
//!
//! The whole point of this workspace is that a seed reproduces a run
//! bit-for-bit; that property is easy to break silently (one `Instant::now`,
//! one `HashMap` iteration in a scheduling decision). This crate is a
//! purpose-built static-analysis pass that walks every `.rs` file under
//! `crates/` and enforces the project's determinism invariants D1-D6 —
//! see [`rules`] for the catalogue.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p pioqo-lint -- check            # human table, exit 1 on findings
//! cargo run -p pioqo-lint -- check --json     # machine-readable diagnostics
//! ```
//!
//! Deliberate exceptions live in `lint.toml` ([`config`]); each carries a
//! mandatory reason. Files under `tests/`, `benches/`, and `examples/`
//! directories are harness code and are not scanned, and the trailing
//! `#[cfg(test)]` region of a library file is exempt from D1-D5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod trace_check;

pub use config::{load_config, LintConfig, LintError};
pub use diag::{Diagnostic, Report};
pub use trace_check::validate_chrome_trace;

use std::path::{Path, PathBuf};

/// Directory names never descended into while scanning.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "fixtures", "tests", "benches", "examples",
];

/// Lint every crate under `<root>/crates/`, applying the allowlist.
///
/// Diagnostics come back sorted by path, then line, then rule, so output
/// is stable across runs and platforms.
pub fn check_workspace(root: &Path, config: &LintConfig) -> Result<Report, LintError> {
    let crates_dir = root.join("crates");
    let mut crate_dirs = list_dirs(&crates_dir)?;
    crate_dirs.sort();

    let mut diagnostics = Vec::new();
    let mut files_checked = 0u64;
    for crate_dir in &crate_dirs {
        let crate_name = file_name_str(crate_dir)?;
        let is_lib_crate = crate_dir.join("src").join("lib.rs").is_file();
        let mut files = Vec::new();
        collect_rs_files(crate_dir, &mut files)?;
        files.sort();
        for file in files {
            let original = std::fs::read_to_string(&file)
                .map_err(|e| LintError(format!("cannot read {}: {e}", file.display())))?;
            let rel_path = relative_path(root, &file)?;
            let is_lib_root = is_lib_crate && rel_path.ends_with("/src/lib.rs");
            files_checked += 1;
            let mut found = Vec::new();
            rules::check_file(
                &rules::FileInput {
                    rel_path: &rel_path,
                    crate_dir: &crate_name,
                    is_lib_crate,
                    is_lib_root,
                    original: &original,
                },
                &mut found,
            );
            diagnostics.extend(
                found
                    .into_iter()
                    .filter(|d| !config.is_allowed(&d.rule, &d.path)),
            );
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(Report {
        files_checked,
        diagnostics,
    })
}

/// Immediate subdirectories of `dir`.
fn list_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    Ok(out)
}

/// Recursively gather `.rs` files, skipping [`SKIP_DIRS`] and dotdirs.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = file_name_str(&path)?;
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Final path component as UTF-8.
fn file_name_str(path: &Path) -> Result<String, LintError> {
    path.file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.to_string())
        .ok_or_else(|| LintError(format!("non-UTF-8 path: {}", path.display())))
}

/// `file` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, file: &Path) -> Result<String, LintError> {
    let rel = file
        .strip_prefix(root)
        .map_err(|_| LintError(format!("{} is outside {}", file.display(), root.display())))?;
    let mut parts = Vec::new();
    for comp in rel.components() {
        let s = comp
            .as_os_str()
            .to_str()
            .ok_or_else(|| LintError(format!("non-UTF-8 path: {}", file.display())))?;
        parts.push(s);
    }
    Ok(parts.join("/"))
}
