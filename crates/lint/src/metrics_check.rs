//! Schema validation for the Prometheus text exposition the metrics
//! registry exports.
//!
//! `repro --metrics DIR` writes `metrics.prom`; CI validates it with
//! `pioqo-lint metrics-check <file>`. The checks mirror what the
//! exporter promises rather than the full Prometheus grammar:
//!
//! - every comment line is a `# TYPE <name> <counter|gauge|histogram>`
//!   declaration (the exporter emits no HELP text or other comments);
//! - metric names are `snake_case` (`[a-z][a-z0-9_]*`) and carry the
//!   `pioqo_` namespace prefix;
//! - no metric name is declared twice (uniqueness across merged cells);
//! - every sample line refers to a previously declared metric —
//!   histogram samples via their `_bucket`/`_sum`/`_count` suffixes;
//! - sample values are non-negative integers (the registry is
//!   integer-only; a float in the output means nondeterminism leaked in);
//! - the only label is `le` on histogram buckets, integer or `+Inf`.

use std::collections::BTreeMap;

/// Validate one Prometheus text exposition document; returns the sample
/// count. Errors carry the 1-based line number.
pub fn validate_prometheus(text: &str) -> Result<u64, String> {
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {ln}: malformed TYPE declaration {rest:?}"));
            };
            check_name(name).map_err(|e| format!("line {ln}: {e}"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!(
                    "line {ln}: metric type {kind:?} is not counter/gauge/histogram"
                ));
            }
            if types.insert(name, kind).is_some() {
                return Err(format!("line {ln}: metric {name:?} declared twice"));
            }
        } else if line.starts_with('#') {
            return Err(format!(
                "line {ln}: only `# TYPE` comments are allowed, got {line:?}"
            ));
        } else {
            validate_sample(line, &types).map_err(|e| format!("line {ln}: {e}"))?;
            samples += 1;
        }
    }
    if types.is_empty() {
        return Err("no metrics: document has no TYPE declarations".to_string());
    }
    Ok(samples)
}

/// `snake_case` with the `pioqo_` namespace prefix.
fn check_name(name: &str) -> Result<(), String> {
    let Some(rest) = name.strip_prefix("pioqo_") else {
        return Err(format!("metric {name:?} lacks the pioqo_ prefix"));
    };
    let mut chars = rest.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_lowercase());
    if !head_ok
        || !rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return Err(format!(
            "metric {name:?} is not snake_case ([a-z][a-z0-9_]*)"
        ));
    }
    Ok(())
}

fn validate_sample(line: &str, types: &BTreeMap<&str, &str>) -> Result<(), String> {
    let Some((series, value)) = line.rsplit_once(' ') else {
        return Err(format!("sample {line:?} has no value"));
    };
    if value.parse::<u64>().is_err() {
        return Err(format!(
            "value {value:?} is not a non-negative integer (the registry is integer-only)"
        ));
    }
    let (name, labels) = match series.split_once('{') {
        Some((n, rest)) => (n, Some(rest)),
        None => (series, None),
    };
    // Resolve the declared base: exact name first (counters/gauges), then
    // the histogram sample suffixes.
    let declared = types.get(name).copied().or_else(|| {
        ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let base = name.strip_suffix(suffix)?;
            (types.get(base) == Some(&"histogram")).then_some("histogram")
        })
    });
    let Some(kind) = declared else {
        return Err(format!("sample {name:?} has no preceding TYPE declaration"));
    };
    match labels {
        None => Ok(()),
        Some(l) => {
            if kind != "histogram" || !name.ends_with("_bucket") {
                return Err(format!(
                    "labels are only allowed on histogram buckets, got {series:?}"
                ));
            }
            let ok = l
                .strip_prefix("le=\"")
                .and_then(|r| r.strip_suffix("\"}"))
                .is_some_and(|le| le == "+Inf" || le.parse::<u64>().is_ok());
            if !ok {
                return Err(format!(
                    "bucket label must be le=\"<integer>\" or le=\"+Inf\", got {{{l}"
                ));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_exporter_shape() {
        let doc = "\
# TYPE pioqo_cell_io_ops_total counter
pioqo_cell_io_ops_total 15
# TYPE pioqo_cell_depth gauge
pioqo_cell_depth 4
# TYPE pioqo_cell_io_latency_us histogram
pioqo_cell_io_latency_us_bucket{le=\"100\"} 2
pioqo_cell_io_latency_us_bucket{le=\"+Inf\"} 5
pioqo_cell_io_latency_us_sum 731
pioqo_cell_io_latency_us_count 5
";
        assert_eq!(validate_prometheus(doc), Ok(6));
    }

    #[test]
    fn rejects_duplicate_declarations() {
        let doc = "\
# TYPE pioqo_x counter
pioqo_x 1
# TYPE pioqo_x counter
pioqo_x 2
";
        assert!(validate_prometheus(doc).is_err_and(|e| e.contains("declared twice")));
    }

    #[test]
    fn rejects_bad_names() {
        let no_prefix = "# TYPE io_ops counter\nio_ops 1\n";
        assert!(validate_prometheus(no_prefix).is_err_and(|e| e.contains("pioqo_ prefix")));
        let camel = "# TYPE pioqo_ioOps counter\npioqo_ioOps 1\n";
        assert!(validate_prometheus(camel).is_err_and(|e| e.contains("snake_case")));
    }

    #[test]
    fn rejects_samples_without_type() {
        let doc = "pioqo_orphan 3\n";
        assert!(validate_prometheus(doc).is_err_and(|e| e.contains("no preceding TYPE")));
    }

    #[test]
    fn rejects_float_values() {
        let doc = "# TYPE pioqo_x gauge\npioqo_x 1.5\n";
        assert!(validate_prometheus(doc).is_err_and(|e| e.contains("integer-only")));
    }

    #[test]
    fn rejects_foreign_comments_and_empty_documents() {
        assert!(
            validate_prometheus("# HELP pioqo_x help text\n").is_err_and(|e| e.contains("# TYPE"))
        );
        assert!(validate_prometheus("").is_err_and(|e| e.contains("no metrics")));
    }

    #[test]
    fn rejects_labels_outside_histogram_buckets() {
        let doc = "# TYPE pioqo_x counter\npioqo_x{le=\"5\"} 1\n";
        assert!(validate_prometheus(doc).is_err_and(|e| e.contains("histogram buckets")));
        let bad_le = "\
# TYPE pioqo_h histogram
pioqo_h_bucket{le=\"fast\"} 1
";
        assert!(validate_prometheus(bad_le).is_err_and(|e| e.contains("le=")));
    }
}
