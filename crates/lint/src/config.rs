//! The `lint.toml` allowlist.
//!
//! Every suppression is explicit and carries a reason, so the allowlist
//! doubles as documentation of the workspace's deliberate exceptions to
//! the determinism rules. The format is a restricted TOML subset, parsed
//! by hand (the workspace vendors no TOML crate):
//!
//! ```toml
//! [[allow]]
//! rule = "D1"
//! path = "crates/device/src/real.rs"
//! reason = "real-device backend measures actual wall-clock latencies"
//! ```
//!
//! `path` is a `/`-separated path relative to the workspace root. A path
//! ending in `/**` allows the rule for everything under that directory.

use std::fmt;
use std::path::Path;

/// A single allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule identifier this entry suppresses (`"D1"` .. `"D6"`).
    pub rule: String,
    /// Workspace-relative path, or a `dir/**` prefix pattern.
    pub path: String,
    /// Human rationale; required so suppressions stay auditable.
    pub reason: String,
}

/// Parsed lint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Accepted suppressions.
    pub allow: Vec<AllowEntry>,
}

/// A configuration or I/O failure, with context.
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

impl LintConfig {
    /// True when `rule` is suppressed for the file at `rel_path`.
    pub fn is_allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.matching_entry(rule, rel_path).is_some()
    }

    /// Index of the first entry suppressing `rule` at `rel_path`, if any.
    /// The caller can use the index to track which entries ever matched —
    /// an entry that suppresses nothing is stale and must be deleted.
    pub fn matching_entry(&self, rule: &str, rel_path: &str) -> Option<usize> {
        self.allow.iter().position(|e| {
            e.rule == rule
                && (e.path == rel_path
                    || e.path
                        .strip_suffix("/**")
                        .map(|prefix| {
                            rel_path
                                .strip_prefix(prefix)
                                .is_some_and(|rest| rest.starts_with('/'))
                        })
                        .unwrap_or(false))
        })
    }
}

/// Load `lint.toml` from `path`; a missing file yields an empty config.
pub fn load_config(path: &Path) -> Result<LintConfig, LintError> {
    if !path.exists() {
        return Ok(LintConfig::default());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
    parse_config(&text).map_err(|e| LintError(format!("{}: {e}", path.display())))
}

/// Parse the restricted-TOML allowlist format.
pub fn parse_config(text: &str) -> Result<LintConfig, LintError> {
    let mut config = LintConfig::default();
    let mut current: Option<AllowEntry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish_entry(&mut config, current.take(), lineno)?;
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(LintError(format!(
                "line {lineno}: unknown section {line}; only [[allow]] is supported"
            )));
        }
        let (key, value) = parse_assignment(line).ok_or_else(|| {
            LintError(format!(
                "line {lineno}: expected key = \"value\", got {line}"
            ))
        })?;
        let entry = current.as_mut().ok_or_else(|| {
            LintError(format!(
                "line {lineno}: {key} outside of an [[allow]] block"
            ))
        })?;
        match key {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "reason" => entry.reason = value,
            other => {
                return Err(LintError(format!(
                    "line {lineno}: unknown key {other}; expected rule/path/reason"
                )))
            }
        }
    }
    let end = text.lines().count();
    finish_entry(&mut config, current, end)?;
    Ok(config)
}

/// Validate and append a completed `[[allow]]` block.
fn finish_entry(
    config: &mut LintConfig,
    entry: Option<AllowEntry>,
    lineno: usize,
) -> Result<(), LintError> {
    let Some(entry) = entry else { return Ok(()) };
    if !crate::rules::RULE_IDS.contains(&entry.rule.as_str()) {
        return Err(LintError(format!(
            "allow block ending near line {lineno}: unknown rule {:?} (expected one of {:?})",
            entry.rule,
            crate::rules::RULE_IDS
        )));
    }
    if entry.path.is_empty() {
        return Err(LintError(format!(
            "allow block ending near line {lineno}: missing path"
        )));
    }
    if entry.reason.is_empty() {
        return Err(LintError(format!(
            "allow block ending near line {lineno}: missing reason (suppressions must be justified)"
        )));
    }
    config.allow.push(entry);
    Ok(())
}

/// Parse a `key = "value"` line; returns `None` when malformed.
fn parse_assignment(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some((key, inner.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches_paths() {
        let cfg = parse_config(
            r#"
# comment
[[allow]]
rule = "D1"
path = "crates/device/src/real.rs"
reason = "measures real latencies"

[[allow]]
rule = "D5"
path = "crates/repro/**"
reason = "binary crate"
"#,
        )
        .expect("well-formed config parses");
        assert_eq!(cfg.allow.len(), 2);
        assert!(cfg.is_allowed("D1", "crates/device/src/real.rs"));
        assert!(!cfg.is_allowed("D2", "crates/device/src/real.rs"));
        assert!(cfg.is_allowed("D5", "crates/repro/src/grids.rs"));
        assert!(!cfg.is_allowed("D5", "crates/repro2/src/grids.rs"));
    }

    #[test]
    fn rejects_unknown_rule() {
        assert!(parse_config("[[allow]]\nrule = \"D99\"\npath = \"x\"\nreason = \"r\"\n").is_err());
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(parse_config("[[allow]]\nrule = \"D1\"\npath = \"x\"\n").is_err());
    }

    #[test]
    fn empty_config_allows_nothing() {
        let cfg = parse_config("").expect("empty config is valid");
        assert!(!cfg.is_allowed("D1", "crates/a/src/lib.rs"));
    }
}
