//! Per-function control-flow graphs over the [`crate::syntax`] token view.
//!
//! Each function body becomes a graph of statement-level nodes with a
//! synthetic entry and exit. Branches (`if`/`else`, `match` arms), loops
//! (back edges plus a loop-exit edge), `return`, `break`, `continue`, and
//! the `?` operator (an edge to exit from any statement containing one)
//! are modelled; everything else is a straight-line statement node. The
//! graph is deliberately conservative: when a construct cannot be shaped,
//! it collapses into a plain node with fallthrough, which can only make
//! the must-release analysis (D9) report a leak path that a human then
//! inspects — never silently hide one... with one documented exception:
//! resources created inside unparsed macro bodies are invisible.

use crate::syntax::{Syntax, TokKind};

/// One statement-level node: a token range `[start, end)` of the masked
/// source. Entry and exit are synthetic (empty ranges).
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// First token of the statement.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
}

/// Control-flow graph of one function body.
pub struct Cfg {
    /// All nodes; `entry` and `exit` are indices into this vector.
    pub nodes: Vec<Node>,
    /// Successor lists, parallel to `nodes`.
    pub succs: Vec<Vec<usize>>,
    /// Synthetic entry node.
    pub entry: usize,
    /// Synthetic exit node: every `return`, `?`, and fn-end fallthrough
    /// leads here.
    pub exit: usize,
}

impl Cfg {
    /// Build the CFG for the body block `body` (an index into
    /// [`Syntax::blocks`]).
    pub fn build(masked: &str, syn: &Syntax, body: usize) -> Cfg {
        let blk = syn.blocks[body];
        let mut b = Builder {
            masked,
            syn,
            nodes: vec![
                Node { start: 0, end: 0 }, // entry
                Node { start: 0, end: 0 }, // exit
            ],
            succs: vec![Vec::new(), Vec::new()],
            loop_stack: Vec::new(),
        };
        let (entry, opens) = b.parse_seq(blk.open + 1, blk.close);
        if let Some(e) = entry {
            b.succs[0].push(e);
        } else {
            b.succs[0].push(1);
        }
        for o in opens {
            b.succs[o].push(1);
        }
        Cfg {
            nodes: b.nodes,
            succs: b.succs,
            entry: 0,
            exit: 1,
        }
    }

    /// The node whose statement span contains token `tok`, if any
    /// (innermost, i.e. the narrowest span).
    pub fn node_containing(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.start <= tok && tok < n.end {
                let better = match best {
                    None => true,
                    Some(p) => (n.end - n.start) < (self.nodes[p].end - self.nodes[p].start),
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }
}

struct LoopCtx {
    header: usize,
    breaks: Vec<usize>,
}

struct Builder<'a> {
    masked: &'a str,
    syn: &'a Syntax,
    nodes: Vec<Node>,
    succs: Vec<Vec<usize>>,
    loop_stack: Vec<LoopCtx>,
}

impl<'a> Builder<'a> {
    fn word(&self, i: usize) -> &str {
        self.syn.text(self.masked, i)
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        matches!(self.syn.tokens[i].kind, TokKind::Ident) && self.word(i) == kw
    }

    fn punct(&self, i: usize) -> Option<u8> {
        match self.syn.tokens[i].kind {
            TokKind::Punct(b) => Some(b),
            _ => None,
        }
    }

    fn new_node(&mut self, start: usize, end: usize) -> usize {
        self.nodes.push(Node { start, end });
        self.succs.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    fn span_has_question(&self, start: usize, end: usize) -> bool {
        (start..end).any(|i| self.punct(i) == Some(b'?'))
    }

    /// Token index of the matching `}` for the block opening at `open`.
    fn block_close(&self, open: usize) -> Option<(usize, usize)> {
        self.syn
            .blocks
            .iter()
            .enumerate()
            .find(|(_, b)| b.open == open)
            .map(|(idx, b)| (idx, b.close))
    }

    /// Next `{` at bracket depth 0 in `[from, end)`; `None` if `;` or `}`
    /// comes first.
    fn next_body_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            match self.punct(j) {
                Some(b'(') | Some(b'[') => depth += 1,
                Some(b')') | Some(b']') => depth -= 1,
                Some(b'{') if depth == 0 => return Some(j),
                Some(b';') | Some(b'}') if depth == 0 => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Parse the statements of `[start, end)` into a chained sub-graph.
    /// Returns the first node and the set of open (fallthrough) ends.
    fn parse_seq(&mut self, start: usize, end: usize) -> (Option<usize>, Vec<usize>) {
        let mut entry: Option<usize> = None;
        let mut opens: Vec<usize> = Vec::new();
        let mut first_construct = true;
        let mut i = start;
        while i < end {
            if self.punct(i) == Some(b';') {
                i += 1;
                continue;
            }
            // Statement attributes (`#[allow(...)] let x = ...`) are skipped.
            if self.punct(i) == Some(b'#') {
                let mut depth = 0i32;
                i += 1;
                while i < end {
                    match self.punct(i) {
                        Some(b'[') => depth += 1,
                        Some(b']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
                continue;
            }
            // Nested items don't execute here; their bodies get their own
            // CFG via the fns list.
            if matches!(self.syn.tokens[i].kind, TokKind::Ident)
                && matches!(
                    self.word(i),
                    "fn" | "impl" | "struct" | "enum" | "mod" | "trait" | "use"
                )
            {
                if self.word(i) == "use" {
                    while i < end && self.punct(i) != Some(b';') {
                        i += 1;
                    }
                    i += 1;
                    continue;
                }
                match self.next_body_open(i + 1, end) {
                    Some(open) => {
                        let close = self.block_close(open).map(|(_, c)| c).unwrap_or(end);
                        i = close + 1;
                        continue;
                    }
                    None => {
                        while i < end && self.punct(i) != Some(b';') {
                            i += 1;
                        }
                        i += 1;
                        continue;
                    }
                }
            }
            let (centry, copens, next) = if self.is_kw(i, "if") {
                self.parse_if(i, end)
            } else if (self.is_kw(i, "for") || self.is_kw(i, "while") || self.is_kw(i, "loop"))
                && self.next_body_open(i + 1, end).is_some()
            {
                self.parse_loop(i, end)
            } else if self.is_kw(i, "match") {
                self.parse_match(i, end)
            } else if self.punct(i) == Some(b'{')
                || (self.is_kw(i, "unsafe") && i + 1 < end && self.punct(i + 1) == Some(b'{'))
            {
                let open = if self.punct(i) == Some(b'{') {
                    i
                } else {
                    i + 1
                };
                match self.block_close(open) {
                    Some((_, close)) => {
                        let (e, o) = self.parse_seq(open + 1, close.min(end));
                        (e, o, close + 1)
                    }
                    None => self.parse_plain(i, end),
                }
            } else {
                self.parse_plain(i, end)
            };
            i = next.max(i + 1);
            let Some(centry) = centry else { continue };
            if first_construct {
                entry = Some(centry);
                first_construct = false;
            } else {
                for o in &opens {
                    let o = *o;
                    self.edge(o, centry);
                }
            }
            opens = copens;
        }
        (entry, opens)
    }

    /// One plain statement: tokens up to the `;` at bracket depth 0.
    fn parse_plain(&mut self, start: usize, end: usize) -> (Option<usize>, Vec<usize>, usize) {
        let mut depth = 0i32;
        let mut j = start;
        while j < end {
            match self.punct(j) {
                Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                Some(b';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let node = self.new_node(start, j.min(end));
        let next = j + 1;
        let mut opens = vec![node];
        if self.is_kw(start, "return") {
            self.edge(node, 1);
            opens.clear();
        } else if self.is_kw(start, "break") {
            if let Some(ctx) = self.loop_stack.last_mut() {
                ctx.breaks.push(node);
            } else {
                self.edge(node, 1);
            }
            opens.clear();
        } else if self.is_kw(start, "continue") {
            let header = self.loop_stack.last().map(|c| c.header);
            if let Some(h) = header {
                self.edge(node, h);
            }
            opens.clear();
        }
        if self.span_has_question(start, j.min(end)) {
            self.edge(node, 1);
        }
        (Some(node), opens, next)
    }

    /// An `if`/`else if`/`else` chain. The condition is a node; each
    /// branch contributes its open ends, and a missing `else` leaves the
    /// condition itself open.
    fn parse_if(&mut self, start: usize, end: usize) -> (Option<usize>, Vec<usize>, usize) {
        let Some(open) = self.next_body_open(start + 1, end) else {
            return self.parse_plain(start, end);
        };
        let Some((_, close)) = self.block_close(open) else {
            return self.parse_plain(start, end);
        };
        let cond = self.new_node(start, open);
        if self.span_has_question(start, open) {
            self.edge(cond, 1);
        }
        let (tentry, topens) = self.parse_seq(open + 1, close.min(end));
        let mut opens = match tentry {
            Some(e) => {
                self.edge(cond, e);
                topens
            }
            None => vec![cond],
        };
        let mut next = close + 1;
        if next < end && self.is_kw(next, "else") {
            if next + 1 < end && self.is_kw(next + 1, "if") {
                let (eentry, eopens, n2) = self.parse_if(next + 1, end);
                if let Some(e) = eentry {
                    self.edge(cond, e);
                }
                opens.extend(eopens);
                next = n2;
            } else if next + 1 < end && self.punct(next + 1) == Some(b'{') {
                if let Some((_, eclose)) = self.block_close(next + 1) {
                    let (eentry, eopens) = self.parse_seq(next + 2, eclose.min(end));
                    match eentry {
                        Some(e) => {
                            self.edge(cond, e);
                            opens.extend(eopens);
                        }
                        None => opens.push(cond),
                    }
                    next = eclose + 1;
                }
            }
        } else {
            opens.push(cond);
        }
        (Some(cond), opens, next)
    }

    /// A `for`/`while`/`loop`: header node, back edge from the body's open
    /// ends, loop-exit from the header (except bare `loop`) and from any
    /// `break`.
    fn parse_loop(&mut self, start: usize, end: usize) -> (Option<usize>, Vec<usize>, usize) {
        let Some(open) = self.next_body_open(start + 1, end) else {
            return self.parse_plain(start, end);
        };
        let Some((_, close)) = self.block_close(open) else {
            return self.parse_plain(start, end);
        };
        let header = self.new_node(start, open);
        if self.span_has_question(start, open) {
            self.edge(header, 1);
        }
        self.loop_stack.push(LoopCtx {
            header,
            breaks: Vec::new(),
        });
        let (bentry, bopens) = self.parse_seq(open + 1, close.min(end));
        let ctx = self.loop_stack.pop().expect("loop context pushed above");
        if let Some(e) = bentry {
            self.edge(header, e);
        }
        for o in bopens {
            self.edge(o, header);
        }
        let mut opens = ctx.breaks;
        if !self.is_kw(start, "loop") {
            opens.push(header);
        }
        (Some(header), opens, close + 1)
    }

    /// A `match`: scrutinee node fans out to every arm; arm open ends are
    /// the construct's open ends.
    fn parse_match(&mut self, start: usize, end: usize) -> (Option<usize>, Vec<usize>, usize) {
        let Some(open) = self.next_body_open(start + 1, end) else {
            return self.parse_plain(start, end);
        };
        let Some((_, close)) = self.block_close(open) else {
            return self.parse_plain(start, end);
        };
        let scrut = self.new_node(start, open);
        if self.span_has_question(start, open) {
            self.edge(scrut, 1);
        }
        let mut opens: Vec<usize> = Vec::new();
        let mut any_arm = false;
        let mut j = open + 1;
        while j < close {
            // Skip the pattern: tokens up to `=>` at depth 0.
            let mut depth = 0i32;
            let mut arrow = None;
            let mut k = j;
            while k + 1 < close {
                match self.punct(k) {
                    Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                    Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                    Some(b'=') if depth == 0 && self.punct(k + 1) == Some(b'>') => {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let body_start = arrow + 2;
            if body_start >= close {
                break;
            }
            any_arm = true;
            if self.punct(body_start) == Some(b'{') {
                match self.block_close(body_start) {
                    Some((_, bclose)) => {
                        let (aentry, aopens) = self.parse_seq(body_start + 1, bclose.min(close));
                        match aentry {
                            Some(e) => {
                                self.edge(scrut, e);
                                opens.extend(aopens);
                            }
                            None => opens.push(scrut),
                        }
                        j = bclose + 1;
                    }
                    None => break,
                }
            } else {
                // Expression arm: tokens up to the `,` at depth 0.
                let mut depth = 0i32;
                let mut e = body_start;
                while e < close {
                    match self.punct(e) {
                        Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                        Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                        Some(b',') if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                let node = self.new_node(body_start, e);
                self.edge(scrut, node);
                if self.is_kw(body_start, "return") {
                    self.edge(node, 1);
                } else if self.is_kw(body_start, "break") {
                    if let Some(ctx) = self.loop_stack.last_mut() {
                        ctx.breaks.push(node);
                    } else {
                        self.edge(node, 1);
                    }
                } else if self.is_kw(body_start, "continue") {
                    let header = self.loop_stack.last().map(|c| c.header);
                    if let Some(h) = header {
                        self.edge(node, h);
                    }
                } else {
                    opens.push(node);
                }
                if self.span_has_question(body_start, e) {
                    self.edge(node, 1);
                }
                j = e + 1;
            }
            // Skip a trailing comma after a block arm.
            while j < close && self.punct(j) == Some(b',') {
                j += 1;
            }
        }
        if !any_arm {
            opens.push(scrut);
        }
        (Some(scrut), opens, close + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(body_src: &str) -> (String, Syntax, Cfg) {
        let src = format!("fn f() {{ {body_src} }}\n");
        let masked = crate::lexer::mask_source(&src);
        let syn = Syntax::parse(&masked);
        let body = syn.fns[0].body;
        let cfg = Cfg::build(&masked, &syn, body);
        (masked, syn, cfg)
    }

    /// Does any path from `from` reach exit without touching a node whose
    /// span contains the word `stop`?
    fn reaches_exit_avoiding(
        masked: &str,
        syn: &Syntax,
        cfg: &Cfg,
        from: usize,
        stop: &str,
    ) -> bool {
        let consumed = |n: usize| {
            let node = cfg.nodes[n];
            (node.start..node.end).any(|i| syn.is_word(masked, i, stop))
        };
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack = cfg.succs[from].clone();
        while let Some(n) = stack.pop() {
            if n == cfg.exit {
                return true;
            }
            if seen[n] || consumed(n) {
                continue;
            }
            seen[n] = true;
            stack.extend(cfg.succs[n].iter().copied());
        }
        false
    }

    fn node_with(masked: &str, syn: &Syntax, cfg: &Cfg, word: &str) -> usize {
        (0..cfg.nodes.len())
            .find(|&n| {
                let node = cfg.nodes[n];
                (node.start..node.end).any(|i| syn.is_word(masked, i, word))
            })
            .expect("word should appear in some node")
    }

    #[test]
    fn straight_line_releases() {
        let (m, s, c) = cfg_of("let x = acquire_it(); work(); release(x);");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(!reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn question_mark_escapes_before_release() {
        let (m, s, c) = cfg_of("let x = acquire_it(); fallible()?; release(x);");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn early_return_escapes() {
        let (m, s, c) = cfg_of("let x = acquire_it(); if bad { return Err(e); } release(x);");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn release_on_both_branches_is_clean() {
        let (m, s, c) =
            cfg_of("let x = acquire_it(); if bad { release(x); return; } work(); release(x);");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(!reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn loop_with_release_after_is_clean() {
        let (m, s, c) = cfg_of("let x = acquire_it(); for i in 0..n { step(i); } release(x);");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(!reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn break_path_skipping_release_leaks() {
        let (m, s, c) = cfg_of(
            "let x = acquire_it(); loop { if done { break; } maybe { release(x); return; } }",
        );
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn match_arm_return_without_release_leaks() {
        let (m, s, c) =
            cfg_of("let x = acquire_it(); match v { A => return, B => { release(x); } } finish();");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn match_all_arms_release_is_clean() {
        let (m, s, c) =
            cfg_of("let x = acquire_it(); match v { A => release(x), B => { release(x); } }");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(!reaches_exit_avoiding(&m, &s, &c, acq, "release"));
    }

    #[test]
    fn trailing_expression_consumes() {
        let (m, s, c) = cfg_of("let x = acquire_it(); wrap(x)");
        let acq = node_with(&m, &s, &c, "acquire_it");
        assert!(!reaches_exit_avoiding(&m, &s, &c, acq, "wrap"));
    }
}
