//! Diagnostics, report rendering, and SARIF 2.1.0 export.

use serde::{Content, Serialize};

/// One rule violation at a specific source location.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule identifier (`"D1"` .. `"D11"`).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: u64,
    /// What went wrong and how to fix it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The result of linting a workspace tree.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_checked: u64,
    /// All violations, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// `lint.toml` entries (`"RULE path"`) that suppressed nothing — each
    /// one documents an exception that no longer exists and must be
    /// deleted, or it will silently swallow a future regression.
    pub stale_allows: Vec<String>,
}

impl Report {
    /// True when no rule fired and no allowlist entry is stale.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale_allows.is_empty()
    }

    /// Render the human-readable table: one row per diagnostic with
    /// aligned columns, then stale-allowlist errors, then a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.diagnostics.is_empty() {
            let loc_width = self
                .diagnostics
                .iter()
                .map(|d| d.path.len() + 1 + digits(d.line))
                .max()
                .unwrap_or(0);
            out.push_str(&format!(
                "{:<4} {:<loc_width$} MESSAGE\n",
                "RULE", "LOCATION"
            ));
            for d in &self.diagnostics {
                let loc = format!("{}:{}", d.path, d.line);
                out.push_str(&format!(
                    "{:<4} {:<loc_width$} {}\n",
                    d.rule, loc, d.message
                ));
                out.push_str(&format!("{:<4} {:<loc_width$}   | {}\n", "", "", d.snippet));
            }
        }
        for stale in &self.stale_allows {
            out.push_str(&format!(
                "STALE ALLOW {stale}: this lint.toml entry suppresses nothing; delete it\n"
            ));
        }
        out.push_str(&format!(
            "checked {} file(s): {} violation(s), {} stale allowlist entr{}\n",
            self.files_checked,
            self.diagnostics.len(),
            self.stale_allows.len(),
            if self.stale_allows.len() == 1 {
                "y"
            } else {
                "ies"
            }
        ));
        out
    }

    /// Render the report as a SARIF 2.1.0 log (the static-analysis
    /// interchange format CI systems ingest to annotate PRs inline).
    /// One run, one driver (`pioqo-lint`), one rule entry per rule that
    /// fired, one result per diagnostic. Stale allowlist entries become
    /// tool-level `error` notifications so they fail CI visibly even
    /// though they have no source location.
    pub fn to_sarif(&self) -> String {
        let mut rule_ids: Vec<&str> = self.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        rule_ids.sort();
        rule_ids.dedup();
        let rules: Vec<Content> = rule_ids
            .iter()
            .map(|id| {
                Content::Map(vec![
                    ("id".to_string(), Content::Str(id.to_string())),
                    (
                        "shortDescription".to_string(),
                        Content::Map(vec![(
                            "text".to_string(),
                            Content::Str(crate::explain::summary(id).to_string()),
                        )]),
                    ),
                ])
            })
            .collect();
        let results: Vec<Content> = self
            .diagnostics
            .iter()
            .map(|d| {
                Content::Map(vec![
                    ("ruleId".to_string(), Content::Str(d.rule.clone())),
                    ("level".to_string(), Content::Str("error".to_string())),
                    (
                        "message".to_string(),
                        Content::Map(vec![("text".to_string(), Content::Str(d.message.clone()))]),
                    ),
                    (
                        "locations".to_string(),
                        Content::Seq(vec![Content::Map(vec![(
                            "physicalLocation".to_string(),
                            Content::Map(vec![
                                (
                                    "artifactLocation".to_string(),
                                    Content::Map(vec![(
                                        "uri".to_string(),
                                        Content::Str(d.path.clone()),
                                    )]),
                                ),
                                (
                                    "region".to_string(),
                                    Content::Map(vec![
                                        ("startLine".to_string(), Content::U64(d.line)),
                                        (
                                            "snippet".to_string(),
                                            Content::Map(vec![(
                                                "text".to_string(),
                                                Content::Str(d.snippet.clone()),
                                            )]),
                                        ),
                                    ]),
                                ),
                            ]),
                        )])]),
                    ),
                ])
            })
            .collect();
        let notifications: Vec<Content> = self
            .stale_allows
            .iter()
            .map(|s| {
                Content::Map(vec![
                    ("level".to_string(), Content::Str("error".to_string())),
                    (
                        "message".to_string(),
                        Content::Map(vec![(
                            "text".to_string(),
                            Content::Str(format!(
                                "stale lint.toml allowlist entry `{s}`: suppresses nothing; delete it"
                            )),
                        )]),
                    ),
                ])
            })
            .collect();
        let mut invocation = vec![(
            "executionSuccessful".to_string(),
            Content::Bool(self.is_clean()),
        )];
        if !notifications.is_empty() {
            invocation.push((
                "toolConfigurationNotifications".to_string(),
                Content::Seq(notifications),
            ));
        }
        let log = Content::Map(vec![
            (
                "$schema".to_string(),
                Content::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
            ),
            ("version".to_string(), Content::Str("2.1.0".to_string())),
            (
                "runs".to_string(),
                Content::Seq(vec![Content::Map(vec![
                    (
                        "tool".to_string(),
                        Content::Map(vec![(
                            "driver".to_string(),
                            Content::Map(vec![
                                ("name".to_string(), Content::Str("pioqo-lint".to_string())),
                                (
                                    "informationUri".to_string(),
                                    Content::Str(
                                        "https://example.invalid/pioqo/DESIGN.md".to_string(),
                                    ),
                                ),
                                ("rules".to_string(), Content::Seq(rules)),
                            ]),
                        )]),
                    ),
                    (
                        "invocations".to_string(),
                        Content::Seq(vec![Content::Map(invocation)]),
                    ),
                    ("results".to_string(), Content::Seq(results)),
                ])]),
            ),
        ]);
        // The vendored serializer is infallible on a hand-built Content
        // tree; the empty-string fallback can never be observed.
        serde_json::to_string_pretty(&log).unwrap_or_default()
    }
}

/// Number of decimal digits in `n` (for column alignment).
fn digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_checked: 3,
            diagnostics: vec![Diagnostic {
                rule: "D1".to_string(),
                path: "crates/x/src/lib.rs".to_string(),
                line: 12,
                message: "wall-clock type Instant in simulation code".to_string(),
                snippet: "let t = Instant::now();".to_string(),
            }],
            stale_allows: vec![],
        }
    }

    #[test]
    fn table_lists_rule_location_and_summary() {
        let t = sample().render_table();
        assert!(t.contains("D1"));
        assert!(t.contains("crates/x/src/lib.rs:12"));
        assert!(t.contains("checked 3 file(s): 1 violation(s)"));
    }

    #[test]
    fn json_round_trip_shape() {
        let j = serde_json::to_string(&sample()).expect("report serializes");
        assert!(j.contains("\"rule\""));
        assert!(j.contains("\"files_checked\""));
        assert!(j.contains("\"line\":12"));
        assert!(j.contains("\"stale_allows\""));
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let r = Report {
            files_checked: 5,
            diagnostics: vec![],
            stale_allows: vec![],
        };
        assert!(r.is_clean());
        assert_eq!(
            r.render_table(),
            "checked 5 file(s): 0 violation(s), 0 stale allowlist entries\n"
        );
    }

    #[test]
    fn stale_allow_entries_make_report_dirty() {
        let r = Report {
            files_checked: 5,
            diagnostics: vec![],
            stale_allows: vec!["D4 crates/exec/src/engine.rs".to_string()],
        };
        assert!(!r.is_clean());
        let t = r.render_table();
        assert!(t.contains("STALE ALLOW D4 crates/exec/src/engine.rs"));
        assert!(t.contains("1 stale allowlist entry\n"));
    }

    #[test]
    fn sarif_has_schema_rules_and_result_locations() {
        let s = sample().to_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\": \"pioqo-lint\""));
        assert!(s.contains("\"ruleId\": \"D1\""));
        assert!(s.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 12"));
        // The fired rule is described in the driver's rule table.
        assert!(s.contains("\"id\": \"D1\""));
    }

    #[test]
    fn sarif_reports_stale_allows_as_notifications() {
        let mut r = sample();
        r.stale_allows
            .push("D4 crates/exec/src/engine.rs".to_string());
        let s = r.to_sarif();
        assert!(s.contains("toolConfigurationNotifications"));
        assert!(s.contains("stale lint.toml allowlist entry"));
        assert!(s.contains("\"executionSuccessful\": false"));
    }
}
