//! Diagnostics and report rendering.

use serde::Serialize;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule identifier (`"D1"` .. `"D6"`).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: u64,
    /// What went wrong and how to fix it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The result of linting a workspace tree.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_checked: u64,
    /// All violations, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the human-readable table: one row per diagnostic with
    /// aligned columns, followed by a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.diagnostics.is_empty() {
            let loc_width = self
                .diagnostics
                .iter()
                .map(|d| d.path.len() + 1 + digits(d.line))
                .max()
                .unwrap_or(0);
            out.push_str(&format!(
                "{:<4} {:<loc_width$} MESSAGE\n",
                "RULE", "LOCATION"
            ));
            for d in &self.diagnostics {
                let loc = format!("{}:{}", d.path, d.line);
                out.push_str(&format!(
                    "{:<4} {:<loc_width$} {}\n",
                    d.rule, loc, d.message
                ));
                out.push_str(&format!("{:<4} {:<loc_width$}   | {}\n", "", "", d.snippet));
            }
        }
        out.push_str(&format!(
            "checked {} file(s): {} violation(s)\n",
            self.files_checked,
            self.diagnostics.len()
        ));
        out
    }
}

/// Number of decimal digits in `n` (for column alignment).
fn digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_checked: 3,
            diagnostics: vec![Diagnostic {
                rule: "D1".to_string(),
                path: "crates/x/src/lib.rs".to_string(),
                line: 12,
                message: "wall-clock type Instant in simulation code".to_string(),
                snippet: "let t = Instant::now();".to_string(),
            }],
        }
    }

    #[test]
    fn table_lists_rule_location_and_summary() {
        let t = sample().render_table();
        assert!(t.contains("D1"));
        assert!(t.contains("crates/x/src/lib.rs:12"));
        assert!(t.contains("checked 3 file(s): 1 violation(s)"));
    }

    #[test]
    fn json_round_trip_shape() {
        let j = serde_json::to_string(&sample()).expect("report serializes");
        assert!(j.contains("\"rule\""));
        assert!(j.contains("\"files_checked\""));
        assert!(j.contains("\"line\":12"));
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let r = Report {
            files_checked: 5,
            diagnostics: vec![],
        };
        assert!(r.is_clean());
        assert_eq!(r.render_table(), "checked 5 file(s): 0 violation(s)\n");
    }
}
