//! Rule rationale for `pioqo-lint explain RULE` and SARIF rule metadata.
//!
//! Every rule's entry answers three questions: what invariant it guards,
//! why the invariant matters for byte-deterministic replay, and what the
//! blessed alternative looks like. The text is the contract reviewers
//! hold code to; keep it in sync with the implementations in
//! [`crate::rules`].

/// One-line summary of a rule (used as SARIF `shortDescription`).
pub fn summary(rule: &str) -> &'static str {
    match rule {
        "D1" => "no wall-clock types in simulated code",
        "D2" => "no ambient entropy; randomness flows through seeded SimRng",
        "D3" => "no hash-ordered collections in simulation crates",
        "D4" => "no raw integer arithmetic on time-named bindings",
        "D5" => "no panics in library crates; return errors",
        "D6" => "library crate roots declare the hygiene attributes",
        "D7" => "no OS threads in simulation crates",
        "D8" => "RNG stream discipline: derive, never clone or share across sessions",
        "D9" => "every acquired lease is released or returned on every exit path",
        "D10" => "no scheduling argument that traces to `now - x`",
        "D11" => "no internal calls to #[deprecated] items",
        _ => "unknown rule",
    }
}

/// Full rationale for a rule, or `None` for an unknown identifier.
pub fn rationale(rule: &str) -> Option<&'static str> {
    let text = match rule {
        "D1" => {
            "D1 — no wall-clock types in simulated code.\n\n\
             `Instant` and `SystemTime` read the host clock, so two runs of the same\n\
             seed diverge the moment a timing-dependent decision is made. Simulated\n\
             code must use `SimTime`/`SimDuration`, which advance only when the event\n\
             queue pops. Harness binaries that genuinely measure the host (bench,\n\
             repro, the real-device backend) carry lint.toml allowlist entries."
        }
        "D2" => {
            "D2 — no ambient entropy.\n\n\
             `thread_rng`, `OsRng`, `from_entropy`, `getrandom`, and `RandomState`\n\
             all pull bits from the OS, which no seed controls. Every random draw in\n\
             the workspace must come from a `SimRng` constructed with `seeded` or\n\
             `derive`, so the master seed reproduces the full draw sequence."
        }
        "D3" => {
            "D3 — no hash-ordered collections in simulation crates.\n\n\
             `HashMap`/`HashSet` iteration order depends on a per-process random\n\
             hasher seed; any simulation decision made while iterating one leaks\n\
             that order into results. Use `BTreeMap`/`BTreeSet`, or sort before\n\
             iterating."
        }
        "D4" => {
            "D4 — no raw integer arithmetic on time-named bindings.\n\n\
             A `u64` nanosecond count mixes silently with a microsecond count; the\n\
             typed wrappers `SimTime`/`SimDuration` make unit mixing a compile\n\
             error. The rule flags `+ - * / %` on identifiers that look like raw\n\
             times (`*_ns`, `*_time`, `deadline`, `latency`) — unless the syntax\n\
             layer saw the identifier declared as `SimTime`/`SimDuration`, in which\n\
             case the wrapper's operators already enforce the units."
        }
        "D5" => {
            "D5 — no panics in library crates.\n\n\
             `unwrap()`, `panic!`, `todo!`, and terse `expect()` calls turn internal\n\
             bugs into aborts for every consumer of the crate. Return `Result`, or\n\
             use `.expect(\"...\")` with a message (>= 10 chars) describing the\n\
             violated invariant so the panic is a documented impossibility."
        }
        "D6" => {
            "D6 — library crate roots declare the hygiene attributes.\n\n\
             Every `src/lib.rs` must carry `#![forbid(unsafe_code)]` and\n\
             `#![warn(missing_docs)]`. The first makes memory safety a workspace\n\
             invariant rather than a review item; the second keeps the public API\n\
             documented as it grows."
        }
        "D7" => {
            "D7 — no OS threads in simulation crates.\n\n\
             Real threads introduce scheduling nondeterminism the seed cannot\n\
             reproduce. Concurrency inside the simulation is modeled in virtual\n\
             time (interleaved I/Os, overlapped seeks); the only sanctioned\n\
             real-thread site is `simkit::par`, which derives one RNG per item and\n\
             merges in submission order so outputs are identical at any thread\n\
             count."
        }
        "D8" => {
            "D8 — RNG stream discipline (flow-sensitive, simulation crates).\n\n\
             Three shapes are flagged. (a) `.clone()` of an RNG: the copy replays\n\
             the same draw sequence, silently correlating two decision streams.\n\
             (b) Passing one RNG `&mut` into calls and also `.fork()`ing it inside\n\
             the same loop body: the fork salt then depends on how many draws the\n\
             callee made, so adding a draw anywhere reshuffles every derived\n\
             stream. (c) Drawing inside a session loop from an RNG declared\n\
             outside it: session N's draws then depend on how much randomness\n\
             sessions 0..N consumed, so adding one draw to one session perturbs\n\
             all later sessions. The blessed pattern is a fresh\n\
             `SimRng::derive(master_seed, index)` stream per unit of work."
        }
        "D9" => {
            "D9 — must-release resource analysis (flow-sensitive, simulation\n\
             crates).\n\n\
             A binding `let x = <expr>.acquire(...)` (a `QdBudget` queue-depth\n\
             lease) must be consumed — released, returned, or moved into a store —\n\
             on every path to the function exit, including the early exits `?`\n\
             inserts. A leaked lease permanently shrinks the simulated device's\n\
             queue budget, which shows up as a throughput collapse thousands of\n\
             events later with no backtrace. This is the static upgrade of\n\
             `QdBudget`'s runtime debug assert: the assert catches a double\n\
             release, D9 catches a missing one. The analysis walks a per-function\n\
             CFG (if/else, match arms, loops, `?`-edges); resources threaded\n\
             through containers or cross-function handoffs are out of scope and\n\
             covered by the runtime check."
        }
        "D10" => {
            "D10 — sim-time causality (flow-sensitive, simulation crates).\n\n\
             An event scheduled at `now - x` fires in the past; the event queue\n\
             panics at runtime (`event scheduled in the past`), but only on the\n\
             input that reaches the bad branch. D10 flags any `schedule`,\n\
             `schedule_timer`, or `complete_at` call whose time argument contains\n\
             `now - ...` — directly or traced through the `let` bindings feeding\n\
             it. Compute deadlines as `now + duration`, and clamp completions with\n\
             `t.max(now)` when retrofitting stored timestamps."
        }
        "D11" => {
            "D11 — no internal calls to #[deprecated] items.\n\n\
             Deprecated shims exist to give external users one release of\n\
             migration room; internal callers would keep them alive forever.\n\
             Free functions are matched as bare `name(...)` calls; methods only\n\
             as `Type::name(...)`, so an unrelated type's method with the same\n\
             name never trips. Test code is exempt (tests may pin deprecated\n\
             behavior until the shim is deleted)."
        }
        _ => return None,
    };
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_IDS;

    #[test]
    fn every_rule_has_summary_and_rationale() {
        for id in RULE_IDS {
            assert_ne!(summary(id), "unknown rule", "missing summary for {id}");
            let r = rationale(id).unwrap_or_default();
            assert!(
                r.starts_with(&format!("{id} —")),
                "rationale for {id} must lead with its identifier"
            );
        }
    }

    #[test]
    fn unknown_rule_is_none() {
        assert!(rationale("D99").is_none());
        assert_eq!(summary("D99"), "unknown rule");
    }
}
