//! Dataflow helpers shared by the flow-sensitive rules (D8-D11).
//!
//! Two queries live here: must-release reachability over a [`Cfg`] (can a
//! resource acquired at one node reach the function exit without passing a
//! consuming node?), and textual origin tracing for sim-time expressions
//! (does this argument, directly or through `let` bindings, contain
//! `now - x`?).

use crate::cfg::Cfg;
use crate::syntax::{Syntax, TokKind};

/// True when some path from `from` reaches the exit node without first
/// passing through a node for which `consumed` holds. `from` itself is
/// not tested against `consumed` (it is the acquisition statement), but
/// its own early-exit edges (`?` in the same statement) do count as
/// escapes.
pub fn reaches_exit_unconsumed<F>(cfg: &Cfg, from: usize, consumed: F) -> bool
where
    F: Fn(usize) -> bool,
{
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack: Vec<usize> = cfg.succs[from].clone();
    while let Some(n) = stack.pop() {
        if n == cfg.exit {
            return true;
        }
        if seen[n] {
            continue;
        }
        seen[n] = true;
        if consumed(n) {
            continue;
        }
        stack.extend(cfg.succs[n].iter().copied());
    }
    false
}

/// True when token `i` in `[0, len)` is a *bare* (consuming) use of
/// `name`: the identifier itself, not a field access on something else
/// (`x.name`), not a borrow (`&name`, `&mut name`), and not a method/field
/// base (`name.foo`). Passing by value, returning, and `drop(name)` all
/// qualify.
pub fn is_consuming_use(syn: &Syntax, masked: &str, i: usize, name: &str) -> bool {
    if !syn.is_word(masked, i, name) {
        return false;
    }
    // `recv.name` — a field named like ours on another value.
    if i > 0 && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'.')) {
        return false;
    }
    // `&name` / `&mut name` — borrowed, not moved.
    if i > 0 && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'&')) {
        return false;
    }
    if i > 1
        && syn.is_word(masked, i - 1, "mut")
        && matches!(syn.tokens[i - 2].kind, TokKind::Punct(b'&'))
    {
        return false;
    }
    // `name.method(...)` / `name.field` — used in place, not moved out.
    if i + 1 < syn.tokens.len() && matches!(syn.tokens[i + 1].kind, TokKind::Punct(b'.')) {
        return false;
    }
    // `let name = ...` rebinding or `name = ...` assignment target.
    if i > 0 && (syn.is_word(masked, i - 1, "let") || syn.is_word(masked, i - 1, "mut")) {
        return false;
    }
    if i + 1 < syn.tokens.len() {
        if let TokKind::Punct(b'=') = syn.tokens[i + 1].kind {
            // `name = ...` assigns; `name ==` compares (not a move either).
            return false;
        }
    }
    true
}

/// True when the token range `[start, end)` contains a subtraction with
/// `now` (or `.now()`) on the left-hand side — the canonical shape of a
/// non-causal "schedule into the past" expression.
pub fn span_has_now_minus(syn: &Syntax, masked: &str, start: usize, end: usize) -> bool {
    let mut i = start;
    while i < end {
        if syn.is_word(masked, i, "now") {
            let mut j = i + 1;
            // Skip the call parens of `ctx.now()`.
            if j + 1 < end
                && matches!(syn.tokens[j].kind, TokKind::Punct(b'('))
                && matches!(syn.tokens[j + 1].kind, TokKind::Punct(b')'))
            {
                j += 2;
            }
            if j < end && matches!(syn.tokens[j].kind, TokKind::Punct(b'-')) {
                // Exclude `->` (fn signatures) and `-=` (compound assign).
                let next_is = |b: u8| {
                    j + 1 < syn.tokens.len()
                        && matches!(syn.tokens[j + 1].kind, TokKind::Punct(p) if p == b)
                };
                if !next_is(b'>') && !next_is(b'=') {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// True when the token range `[start, end)` contains `now - x` directly,
/// or mentions a local binding whose initializer does (followed
/// transitively through `let` bindings up to `depth` hops).
pub fn traces_to_now_minus(
    syn: &Syntax,
    masked: &str,
    start: usize,
    end: usize,
    depth: u32,
) -> bool {
    if span_has_now_minus(syn, masked, start, end) {
        return true;
    }
    if depth == 0 {
        return false;
    }
    for i in start..end {
        if !matches!(syn.tokens[i].kind, TokKind::Ident) {
            continue;
        }
        // Field accesses (`x.due`) don't resolve to local `let` bindings.
        if i > 0 && matches!(syn.tokens[i - 1].kind, TokKind::Punct(b'.')) {
            continue;
        }
        let name = syn.text(masked, i);
        for lb in &syn.lets {
            if lb.name == name
                && !(start <= lb.name_tok && lb.name_tok < end)
                && traces_to_now_minus(syn, masked, lb.rhs_start, lb.rhs_end, depth - 1)
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn_of(src: &str) -> (String, Syntax) {
        let masked = crate::lexer::mask_source(src);
        let syn = Syntax::parse(&masked);
        (masked, syn)
    }

    #[test]
    fn now_minus_detected_plain_and_method() {
        let (m, s) = syn_of("fn f() { let a = now - lag; let b = ctx.now() - lag; }\n");
        assert!(span_has_now_minus(&s, &m, 0, s.tokens.len()));
    }

    #[test]
    fn arrow_and_addition_are_not_now_minus() {
        let (m, s) = syn_of("fn now() -> SimTime { t }\nfn g() { let a = now + lag; }\n");
        assert!(!span_has_now_minus(&s, &m, 0, s.tokens.len()));
    }

    #[test]
    fn tracing_follows_let_bindings() {
        let (m, s) = syn_of("fn f() { let due = now - lag; q.schedule(due, ev); }\n");
        // The argument span is just the identifier `due`.
        let due_use = s
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| &m[t.start..t.end] == "due")
            .map(|(i, _)| i)
            .next_back()
            .expect("due appears twice");
        assert!(traces_to_now_minus(&s, &m, due_use, due_use + 1, 3));
    }

    #[test]
    fn tracing_is_bounded_and_clean_bindings_pass() {
        let (m, s) = syn_of("fn f() { let due = now + lag; q.schedule(due, ev); }\n");
        let due_use = s
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| &m[t.start..t.end] == "due")
            .map(|(i, _)| i)
            .next_back()
            .expect("due appears twice");
        assert!(!traces_to_now_minus(&s, &m, due_use, due_use + 1, 3));
    }

    #[test]
    fn consuming_use_distinguishes_borrows_and_fields() {
        let (m, s) = syn_of("fn f() { take(x); bor(&x); borm(&mut x); y.x; x.go(); }\n");
        let uses: Vec<(usize, bool)> = s
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| &m[t.start..t.end] == "x")
            .map(|(i, _)| (i, is_consuming_use(&s, &m, i, "x")))
            .collect();
        let flags: Vec<bool> = uses.iter().map(|(_, c)| *c).collect();
        assert_eq!(flags, vec![true, false, false, false, false]);
    }
}
