//! A lightweight Rust syntax layer over the masked token stream.
//!
//! The flow-sensitive rules (D8-D11) need more than token hits: they ask
//! *which function* a call sits in, *which loop body* an identifier is
//! used in, *what type* a field was declared with, and *which items* carry
//! a `#[deprecated]` attribute. This module parses exactly that much
//! structure out of the masked source (see [`crate::lexer`]) — no rustc,
//! no `syn`, no allocation beyond the token vector — and nothing more.
//! It is a best-effort structural view: the workspace's own style (rustfmt,
//! no macros defining items, test modules last) is assumed, and anything
//! the parser cannot shape is simply invisible to the flow rules rather
//! than an error.
//!
//! The pipeline is `lexer::mask_source` → [`tokenize`] → [`Syntax::parse`]
//! → [`crate::cfg`] (per-function control-flow graphs) → the rules.

use crate::lexer::is_ident_char;

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `issue_time`, `SimRng`).
    Ident,
    /// Numeric literal (`42`, `0xC1`, `1u64`).
    Number,
    /// Any single punctuation byte (`{`, `?`, `+`, ...).
    Punct(u8),
}

/// One token of the masked source, with its byte span.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Split masked source into identifier / number / punctuation tokens.
///
/// Comments and literals were already blanked by the lexer, so whitespace
/// is the only other content and is skipped.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_char(c) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let kind = if c.is_ascii_digit() {
                TokKind::Number
            } else {
                TokKind::Ident
            };
            out.push(Token {
                kind,
                start,
                end: i,
            });
        } else {
            out.push(Token {
                kind: TokKind::Punct(c),
                start: i,
                end: i + 1,
            });
            i += 1;
        }
    }
    out
}

/// A `{ ... }` region, by token index.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the closing `}` (or one past the last token when
    /// the source is truncated/unbalanced).
    pub close: usize,
    /// Enclosing block, if any.
    pub parent: Option<usize>,
}

/// A `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// Index into [`Syntax::blocks`] of the body block.
    pub body: usize,
    /// Name of the `impl` target type when the fn sits directly in an
    /// `impl` block (`Db` for `impl Db { fn create ... }`).
    pub impl_type: Option<String>,
}

/// A `for` / `while` / `loop` construct.
#[derive(Debug, Clone, Copy)]
pub struct LoopItem {
    /// Token index of the loop keyword.
    pub kw: usize,
    /// Header token range `(kw, body-open)` — loop variable and iterator
    /// for `for`, condition for `while`, empty for `loop`.
    pub header_start: usize,
    /// One past the last header token.
    pub header_end: usize,
    /// Index into [`Syntax::blocks`] of the body block.
    pub body: usize,
}

/// A `let NAME = rhs;` binding of a plain identifier (pattern bindings
/// such as `let Some(x) = ...` are not recorded).
#[derive(Debug, Clone)]
pub struct LetBind {
    /// The bound name.
    pub name: String,
    /// Token index of the bound name.
    pub name_tok: usize,
    /// First token of the initializer expression.
    pub rhs_start: usize,
    /// One past the last initializer token.
    pub rhs_end: usize,
}

/// An item declared `#[deprecated]`.
#[derive(Debug, Clone)]
pub struct DeprecatedItem {
    /// The item's name.
    pub name: String,
    /// `impl` target type when declared inside an `impl` block.
    pub impl_type: Option<String>,
}

/// The parsed structural view of one file.
pub struct Syntax {
    /// All tokens of the masked source.
    pub tokens: Vec<Token>,
    /// All brace blocks, in opening order.
    pub blocks: Vec<Block>,
    /// All `fn` items with bodies.
    pub fns: Vec<FnItem>,
    /// All loop constructs.
    pub loops: Vec<LoopItem>,
    /// All plain `let NAME = ...;` bindings.
    pub lets: Vec<LetBind>,
    /// Identifiers declared with a `SimTime` / `SimDuration` type
    /// annotation anywhere in the file (struct fields, `let` annotations,
    /// fn parameters).
    pub time_typed: std::collections::BTreeSet<String>,
    /// Items carrying `#[deprecated]`.
    pub deprecated: Vec<DeprecatedItem>,
}

impl Syntax {
    /// Parse the masked source of one file.
    pub fn parse(masked: &str) -> Syntax {
        let tokens = tokenize(masked);
        let blocks = find_blocks(&tokens);
        let fns = find_fns(masked, &tokens, &blocks);
        let loops = find_loops(masked, &tokens, &blocks);
        let lets = find_lets(masked, &tokens);
        let time_typed = find_time_typed(masked, &tokens);
        let deprecated = find_deprecated(masked, &tokens, &blocks, &fns);
        Syntax {
            tokens,
            blocks,
            fns,
            loops,
            lets,
            time_typed,
            deprecated,
        }
    }

    /// The source text of token `i`.
    pub fn text<'a>(&self, masked: &'a str, i: usize) -> &'a str {
        let t = self.tokens[i];
        &masked[t.start..t.end]
    }

    /// True when token `i` is the identifier `word`.
    pub fn is_word(&self, masked: &str, i: usize, word: &str) -> bool {
        matches!(self.tokens[i].kind, TokKind::Ident) && self.text(masked, i) == word
    }

    /// Innermost block whose span contains token `i`, if any.
    pub fn enclosing_block(&self, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (b, blk) in self.blocks.iter().enumerate() {
            if blk.open < i && i < blk.close {
                let better = match best {
                    None => true,
                    Some(prev) => self.blocks[prev].open < blk.open,
                };
                if better {
                    best = Some(b);
                }
            }
        }
        best
    }

    /// True when token `i` lies inside block `b` (exclusive of the braces).
    pub fn block_contains(&self, b: usize, i: usize) -> bool {
        let blk = self.blocks[b];
        blk.open < i && i < blk.close
    }

    /// The function whose body contains token `i`, if any (innermost).
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        let mut best: Option<&FnItem> = None;
        for f in &self.fns {
            if self.block_contains(f.body, i) {
                let better = match best {
                    None => true,
                    Some(prev) => self.blocks[prev.body].open < self.blocks[f.body].open,
                };
                if better {
                    best = Some(f);
                }
            }
        }
        best
    }

    /// Loops whose body contains token `i`, innermost last.
    pub fn enclosing_loops(&self, i: usize) -> Vec<&LoopItem> {
        let mut hits: Vec<&LoopItem> = self
            .loops
            .iter()
            .filter(|l| self.block_contains(l.body, i))
            .collect();
        hits.sort_by_key(|l| self.blocks[l.body].open);
        hits
    }
}

/// Match `{` / `}` pairs into a block tree.
fn find_blocks(tokens: &[Token]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Punct(b'{') => {
                let parent = stack.last().copied();
                stack.push(blocks.len());
                blocks.push(Block {
                    open: i,
                    close: tokens.len(),
                    parent,
                });
            }
            TokKind::Punct(b'}') => {
                if let Some(b) = stack.pop() {
                    blocks[b].close = i;
                }
            }
            _ => {}
        }
    }
    blocks
}

/// The `impl` target type of the block opening at token `open`, when the
/// tokens introducing that block form an `impl` header.
fn impl_type_of(masked: &str, tokens: &[Token], open: usize) -> Option<String> {
    // Walk back to the start of the item header: the previous `;`, `{`,
    // or `}` at the same level ends the preceding item.
    let mut start = open;
    while start > 0 {
        match tokens[start - 1].kind {
            TokKind::Punct(b';')
            | TokKind::Punct(b'{')
            | TokKind::Punct(b'}')
            | TokKind::Punct(b']') => break,
            _ => start -= 1,
        }
    }
    let header = &tokens[start..open];
    let word = |t: &Token| &masked[t.start..t.end];
    let impl_pos = header
        .iter()
        .position(|t| matches!(t.kind, TokKind::Ident) && word(t) == "impl")?;
    // `impl Type {` names the type directly; `impl Trait for Type {` names
    // it after `for`. Generics (`impl<'a> ...`) are skipped by taking the
    // *last* plain identifier before `{` that is not inside `<...>`.
    let mut angle = 0i32;
    let mut after_for = None;
    let mut last_ident = None;
    for t in header.iter().skip(impl_pos + 1) {
        match t.kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => angle -= 1,
            TokKind::Ident if angle == 0 => {
                let w = word(t);
                if w == "for" {
                    after_for = Some(());
                    last_ident = None;
                } else if w != "where" && last_ident.is_none() {
                    last_ident = Some(w.to_string());
                }
            }
            _ => {}
        }
        if after_for.is_some() && last_ident.is_some() {
            break;
        }
    }
    last_ident
}

/// Find every `fn` item that has a body block.
fn find_fns(masked: &str, tokens: &[Token], blocks: &[Block]) -> Vec<FnItem> {
    let word = |i: usize| &masked[tokens[i].start..tokens[i].end];
    let mut fns = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if matches!(tokens[i].kind, TokKind::Ident)
            && word(i) == "fn"
            && matches!(tokens[i + 1].kind, TokKind::Ident)
        {
            let name_tok = i + 1;
            // The body is the next `{` at bracket depth 0; a `;` first
            // means a bodyless declaration (trait method, extern).
            let mut depth = 0i32;
            let mut j = name_tok + 1;
            let mut body = None;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                    TokKind::Punct(b'{') if depth == 0 => {
                        body = blocks.iter().position(|b| b.open == j);
                        break;
                    }
                    TokKind::Punct(b';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(body) = body {
                let impl_type = blocks[body]
                    .parent
                    .and_then(|p| impl_type_of(masked, tokens, blocks[p].open));
                fns.push(FnItem {
                    name: word(name_tok).to_string(),
                    name_tok,
                    body,
                    impl_type,
                });
            }
        }
        i += 1;
    }
    fns
}

/// Find `for` / `while` / `loop` constructs with their header spans.
fn find_loops(masked: &str, tokens: &[Token], blocks: &[Block]) -> Vec<LoopItem> {
    let word = |i: usize| &masked[tokens[i].start..tokens[i].end];
    let mut loops = Vec::new();
    for i in 0..tokens.len() {
        if !matches!(tokens[i].kind, TokKind::Ident) {
            continue;
        }
        let kw = word(i);
        if kw != "for" && kw != "while" && kw != "loop" {
            continue;
        }
        // `impl Trait for Type` and `for<'a>` bounds reuse the keyword: a
        // genuine loop never follows an identifier or a closing `>`.
        if i > 0 {
            match tokens[i - 1].kind {
                TokKind::Ident | TokKind::Punct(b'>') => continue,
                _ => {}
            }
        }
        // The body is the next `{` at depth 0; hitting `;` or `}` first
        // means this was not a loop after all (e.g. an HRTB bound).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'{') if depth == 0 => {
                    body = blocks.iter().position(|b| b.open == j);
                    break;
                }
                TokKind::Punct(b';') | TokKind::Punct(b'}') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(body) = body {
            loops.push(LoopItem {
                kw: i,
                header_start: i + 1,
                header_end: blocks[body].open,
                body,
            });
        }
    }
    loops
}

/// Record every `let NAME = rhs;` binding of a plain identifier.
fn find_lets(masked: &str, tokens: &[Token]) -> Vec<LetBind> {
    let word = |i: usize| &masked[tokens[i].start..tokens[i].end];
    let mut lets = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(matches!(tokens[i].kind, TokKind::Ident) && word(i) == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < tokens.len() && matches!(tokens[j].kind, TokKind::Ident) && word(j) == "mut" {
            j += 1;
        }
        if j >= tokens.len() || !matches!(tokens[j].kind, TokKind::Ident) {
            i += 1;
            continue;
        }
        let name_tok = j;
        // A plain binding is `let [mut] NAME [: Type] = ...;` — a `(`,
        // `::` or `{` right after the name means a pattern, not a binding.
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut eq = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'{') if eq.is_none() => break,
                TokKind::Punct(b':')
                    if eq.is_none()
                        && k + 1 < tokens.len()
                        && matches!(tokens[k + 1].kind, TokKind::Punct(b':')) =>
                {
                    break; // `let Enum::Variant(..)` path pattern
                }
                TokKind::Punct(b'<') => depth += 1,
                TokKind::Punct(b'>') => depth -= 1,
                TokKind::Punct(b'=')
                    if depth == 0
                        && eq.is_none()
                        && tokens
                            .get(k + 1)
                            .is_none_or(|t| !matches!(t.kind, TokKind::Punct(b'='))) =>
                {
                    eq = Some(k);
                    break;
                }
                TokKind::Punct(b';') => break,
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i = j;
            continue;
        };
        // The initializer runs to the `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut end = eq + 1;
        while end < tokens.len() {
            match tokens[end].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
                TokKind::Punct(b';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        lets.push(LetBind {
            name: word(name_tok).to_string(),
            name_tok,
            rhs_start: eq + 1,
            rhs_end: end,
        });
        i = eq + 1;
    }
    lets
}

/// Identifiers annotated `: SimTime` or `: SimDuration` anywhere in the
/// file: struct fields, fn parameters, and `let` type ascriptions.
fn find_time_typed(masked: &str, tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let word = |i: usize| &masked[tokens[i].start..tokens[i].end];
    let mut typed = std::collections::BTreeSet::new();
    for i in 1..tokens.len().saturating_sub(1) {
        if !matches!(tokens[i].kind, TokKind::Punct(b':')) {
            continue;
        }
        // Skip `::` path separators on either side.
        if matches!(tokens[i - 1].kind, TokKind::Punct(b':'))
            || matches!(tokens[i + 1].kind, TokKind::Punct(b':'))
        {
            continue;
        }
        if !matches!(tokens[i - 1].kind, TokKind::Ident) {
            continue;
        }
        // Scan the type expression (until a `,`/`;`/`=`/`)`/`{`/`>` at
        // depth 0) for the wrapper names.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut is_time = false;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct(b'<') | TokKind::Punct(b'(') => depth += 1,
                TokKind::Punct(b')') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(b'>') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(b',')
                | TokKind::Punct(b';')
                | TokKind::Punct(b'=')
                | TokKind::Punct(b'{')
                | TokKind::Punct(b'}')
                    if depth == 0 =>
                {
                    break
                }
                TokKind::Ident => {
                    let w = word(j);
                    if w == "SimTime" || w == "SimDuration" {
                        is_time = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if is_time {
            typed.insert(word(i - 1).to_string());
        }
    }
    typed
}

/// Find every `fn` declared under a `#[deprecated]` attribute.
fn find_deprecated(
    masked: &str,
    tokens: &[Token],
    _blocks: &[Block],
    fns: &[FnItem],
) -> Vec<DeprecatedItem> {
    let word = |i: usize| &masked[tokens[i].start..tokens[i].end];
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        let is_attr_open = matches!(tokens[i].kind, TokKind::Punct(b'#'))
            && matches!(tokens[i + 1].kind, TokKind::Punct(b'['))
            && matches!(tokens[i + 2].kind, TokKind::Ident)
            && word(i + 2) == "deprecated";
        if !is_attr_open {
            i += 1;
            continue;
        }
        // Close the attribute, then skip further attributes and modifiers
        // until the `fn` keyword (or give up at the next item boundary).
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
        let mut fn_name_tok = None;
        while j + 1 < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct(b'#') => {
                    // Skip the chained attribute.
                    let mut d = 0i32;
                    j += 1;
                    while j < tokens.len() {
                        match tokens[j].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                TokKind::Ident if word(j) == "fn" => {
                    if matches!(tokens[j + 1].kind, TokKind::Ident) {
                        fn_name_tok = Some(j + 1);
                    }
                    break;
                }
                TokKind::Ident => j += 1, // pub, const, async, ...
                TokKind::Punct(b'(') | TokKind::Punct(b')') => j += 1, // pub(crate)
                _ => break,
            }
        }
        if let Some(name_tok) = fn_name_tok {
            let impl_type = fns
                .iter()
                .find(|f| f.name_tok == name_tok)
                .and_then(|f| f.impl_type.clone());
            out.push(DeprecatedItem {
                name: word(name_tok).to_string(),
                impl_type,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (String, Syntax) {
        let masked = crate::lexer::mask_source(src);
        let syn = Syntax::parse(&masked);
        (masked, syn)
    }

    #[test]
    fn tokenizes_idents_numbers_punct() {
        let toks = tokenize("let x_ns = 0xFF + f(2);");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(kinds[0], TokKind::Ident); // let
        assert_eq!(kinds[1], TokKind::Ident); // x_ns
        assert_eq!(kinds[3], TokKind::Number); // 0xFF
        assert_eq!(kinds[4], TokKind::Punct(b'+'));
    }

    #[test]
    fn finds_fns_and_bodies() {
        let (_, syn) = parse("fn a() { 1 }\nimpl Db { pub fn create(x: u32) -> Db { x } }\n");
        let names: Vec<_> = syn.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "create"]);
        assert_eq!(syn.fns[1].impl_type.as_deref(), Some("Db"));
    }

    #[test]
    fn impl_for_names_the_target_type() {
        let (_, syn) = parse("impl<'a> Planner for Qdtt<'a> { fn admit(&self) { } }\n");
        assert_eq!(syn.fns[0].impl_type.as_deref(), Some("Qdtt"));
    }

    #[test]
    fn finds_loops_not_impl_for() {
        let (m, syn) =
            parse("impl Show for X { fn go(&self) { for s in 0..self.n { work(s); } } }\n");
        assert_eq!(syn.loops.len(), 1);
        let l = &syn.loops[0];
        let header: Vec<_> = (l.header_start..l.header_end)
            .map(|i| syn.text(&m, i).to_string())
            .collect();
        assert!(header.contains(&"s".to_string()));
    }

    #[test]
    fn finds_let_bindings_with_rhs() {
        let (m, syn) = parse("fn f() { let due = now - lag; use_it(due); }\n");
        assert_eq!(syn.lets.len(), 1);
        let b = &syn.lets[0];
        assert_eq!(b.name, "due");
        let rhs: Vec<_> = (b.rhs_start..b.rhs_end)
            .map(|i| syn.text(&m, i).to_string())
            .collect();
        assert_eq!(rhs, vec!["now", "-", "lag"]);
    }

    #[test]
    fn pattern_lets_are_skipped() {
        let (_, syn) = parse("fn f() { let Some(x) = opt else { return; }; }\n");
        assert!(syn.lets.is_empty());
    }

    #[test]
    fn time_typed_collects_fields_params_and_ascriptions() {
        let (_, syn) = parse(
            "struct S { issue_time: SimTime, grace: Option<SimDuration>, n: u64 }\n\
             fn f(deadline: SimTime) { let t: SimDuration = d; }\n",
        );
        assert!(syn.time_typed.contains("issue_time"));
        assert!(syn.time_typed.contains("grace"));
        assert!(syn.time_typed.contains("deadline"));
        assert!(syn.time_typed.contains("t"));
        assert!(!syn.time_typed.contains("n"));
    }

    #[test]
    fn deprecated_items_record_impl_type() {
        let (_, syn) = parse(
            "#[deprecated(note = \"x\")]\npub fn run_fts() { }\n\
             impl Db { #[deprecated]\n#[allow(dead_code)]\npub fn create() { } }\n",
        );
        let got: Vec<_> = syn
            .deprecated
            .iter()
            .map(|d| (d.impl_type.as_deref(), d.name.as_str()))
            .collect();
        assert_eq!(got, vec![(None, "run_fts"), (Some("Db"), "create")]);
    }

    #[test]
    fn enclosing_fn_and_loop_nesting() {
        let (m, syn) = parse("fn outer() { loop { inner_call(); } }\n");
        let call_tok = syn
            .tokens
            .iter()
            .position(|t| &m[t.start..t.end] == "inner_call")
            .expect("call token present in source");
        assert_eq!(
            syn.enclosing_fn(call_tok).map(|f| f.name.as_str()),
            Some("outer")
        );
        assert_eq!(syn.enclosing_loops(call_tok).len(), 1);
    }
}
