//! A minimal Rust lexer that masks comments and string/char literals.
//!
//! The rule checkers in this crate are token-level: they look for
//! identifiers such as `Instant` or `HashMap` in source text. Doing that
//! naively would flag prose in doc comments and message strings, so every
//! file is first passed through [`mask_source`], which replaces the
//! contents of comments, string literals, and char literals with spaces
//! while preserving byte offsets and line boundaries exactly. Rules then
//! scan the masked text, and map hits back to the original text (same
//! offsets) when they need literal content — e.g. to measure the length of
//! an `.expect("...")` message.

/// Lexing state while walking a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Ordinary code.
    Code,
    /// Inside `// ...` until end of line.
    LineComment,
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a cooked string literal (`"..."` or `b"..."`).
    Str,
    /// Inside a raw string literal, with this many `#` marks in the fence.
    RawStr(u32),
    /// Inside a char or byte literal (`'x'`, `b'\n'`).
    CharLit,
}

/// True when `c` can be part of an identifier.
pub fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Replace the interior of comments and string/char literals with spaces.
///
/// The output has exactly the same length and the same newline positions
/// as the input, so line numbers and byte offsets computed on the masked
/// text are valid for the original.
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match state {
            State::Code => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 2;
                    continue;
                }
                if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    state = State::Str;
                    out[i] = b' ';
                    i += 1;
                    continue;
                }
                // Raw strings: r"...", r#"..."#, and byte variants b"..",
                // br#".."#. Only when the prefix letter does not terminate
                // a longer identifier (`var` is not a raw-string start).
                let prev_ident = i > 0 && is_ident_char(bytes[i - 1]);
                if !prev_ident && (c == b'r' || c == b'b') {
                    if let Some((hashes, skip)) = raw_string_start(&bytes[i..]) {
                        for b in out.iter_mut().skip(i).take(skip) {
                            *b = b' ';
                        }
                        state = State::RawStr(hashes);
                        i += skip;
                        continue;
                    }
                    if c == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        state = State::Str;
                        i += 2;
                        continue;
                    }
                    if c == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        state = State::CharLit;
                        i += 2;
                        continue;
                    }
                }
                if c == b'\'' {
                    // Disambiguate char literals from lifetimes: `'a'` is a
                    // char, `'a` followed by a non-quote is a lifetime.
                    let next = bytes.get(i + 1).copied();
                    let is_char = match next {
                        Some(b'\\') => true,
                        Some(n) if is_ident_char(n) => bytes.get(i + 2) == Some(&b'\''),
                        Some(_) => true,
                        None => false,
                    };
                    if is_char {
                        out[i] = b' ';
                        state = State::CharLit;
                        i += 1;
                        continue;
                    }
                }
                i += 1;
            }
            State::LineComment => {
                if c == b'\n' {
                    state = State::Code;
                } else {
                    out[i] = b' ';
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 2;
                } else if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 2;
                } else {
                    if c != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < bytes.len() {
                    out[i] = b' ';
                    if bytes[i + 1] != b'\n' {
                        out[i + 1] = b' ';
                    }
                    i += 2;
                } else if c == b'"' {
                    out[i] = b' ';
                    state = State::Code;
                    i += 1;
                } else {
                    if c != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && fence_closes(&bytes[i + 1..], hashes) {
                    let span = 1 + hashes as usize;
                    for b in out.iter_mut().skip(i).take(span) {
                        *b = b' ';
                    }
                    state = State::Code;
                    i += span;
                } else {
                    if c != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
            }
            State::CharLit => {
                if c == b'\\' && i + 1 < bytes.len() {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 2;
                } else if c == b'\'' {
                    out[i] = b' ';
                    state = State::Code;
                    i += 1;
                } else {
                    out[i] = b' ';
                    i += 1;
                }
            }
        }
    }
    // The input was valid UTF-8 and we only overwrote ASCII positions with
    // spaces inside masked regions; multi-byte chars inside those regions
    // are replaced byte-for-byte, which keeps lengths identical. Replacing
    // continuation bytes with spaces cannot produce invalid text because we
    // replace every byte of the region.
    mask_non_ascii(&mut out);
    match String::from_utf8(out) {
        Ok(s) => s,
        // Unreachable in practice; fall back to the original so a lexer bug
        // degrades to extra findings rather than a crash.
        Err(_) => src.to_string(),
    }
}

/// Replace any remaining non-ASCII bytes with spaces so the masked buffer
/// is always valid UTF-8 (multi-byte chars can appear inside literals).
fn mask_non_ascii(out: &mut [u8]) {
    for b in out.iter_mut() {
        if !b.is_ascii() {
            *b = b' ';
        }
    }
}

/// If `rest` begins a raw-string fence (`r"`, `r#"`, `br##"` ...), return
/// the number of `#` marks and the total prefix length to skip.
fn raw_string_start(rest: &[u8]) -> Option<(u32, usize)> {
    let mut idx = 0;
    if rest.first() == Some(&b'b') {
        idx = 1;
    }
    if rest.get(idx) != Some(&b'r') {
        return None;
    }
    idx += 1;
    let mut hashes = 0u32;
    while rest.get(idx) == Some(&b'#') {
        hashes += 1;
        idx += 1;
    }
    if rest.get(idx) == Some(&b'"') {
        Some((hashes, idx + 1))
    } else {
        None
    }
}

/// True when `rest` starts with `hashes` consecutive `#` bytes.
fn fence_closes(rest: &[u8], hashes: u32) -> bool {
    let n = hashes as usize;
    rest.len() >= n && rest[..n].iter().all(|&b| b == b'#')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments() {
        let m = mask_source("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!m.contains("Instant"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.len(), "let x = 1; // Instant::now()\nlet y = 2;".len());
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask_source("a /* x /* HashMap */ y */ b");
        assert!(!m.contains("HashMap"));
        assert!(m.starts_with("a "));
        assert!(m.ends_with(" b"));
    }

    #[test]
    fn masks_strings_and_keeps_offsets() {
        let src = r#"panic!("uses Instant here"); x"#;
        let m = mask_source(src);
        assert!(!m.contains("Instant"));
        assert!(m.contains("panic!"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_raw_strings() {
        let src = "let s = r#\"thread_rng\"#; done";
        let m = mask_source(src);
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("done"));
    }

    #[test]
    fn keeps_lifetimes_masks_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'H'; }";
        let m = mask_source(src);
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains('H'));
    }

    #[test]
    fn masks_escaped_quote_in_string() {
        let src = r#"let s = "a\"HashMap"; rest"#;
        let m = mask_source(src);
        assert!(!m.contains("HashMap"));
        assert!(m.contains("rest"));
    }

    #[test]
    fn preserves_newlines_in_multiline_strings() {
        let src = "let s = \"one\ntwo\nthree\";\nlet t = 1;";
        let m = mask_source(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(m.contains("let t = 1;"));
    }
}
