//! Command-line entry point for the workspace linter.
//!
//! ```text
//! pioqo-lint check [--root DIR] [--config FILE] [--json] [--sarif FILE]
//! pioqo-lint explain RULE
//! pioqo-lint trace-check <file>...
//! pioqo-lint metrics-check <file>...
//! ```
//!
//! `check` runs the D1-D11 determinism scan; `explain` prints one rule's
//! rationale; `trace-check` validates exported Chrome trace JSON files
//! against the exporter's schema; `metrics-check` validates exported
//! Prometheus text expositions (from `repro --metrics`).
//!
//! Exit status: 0 when clean, 1 when any rule fired, an allowlist entry
//! is stale, or an exported artifact is malformed, 2 on usage or I/O
//! errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pioqo_lint::{check_workspace, load_config, LintError};
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "usage: pioqo-lint check [--root DIR] [--config FILE] [--json] [--sarif FILE]
       pioqo-lint explain RULE
       pioqo-lint trace-check <file>...
       pioqo-lint metrics-check <file>...

`check` enforces the workspace determinism invariants D1-D11 over every
.rs file under <root>/crates/. The allowlist is read from --config
(default: <root>/lint.toml); entries that suppress nothing are errors.
Prints a human-readable table, or a JSON report with --json; --sarif
additionally writes a SARIF 2.1.0 log for CI annotation.

`explain RULE` prints the invariant a rule guards and why it matters
(e.g. `pioqo-lint explain D9`).

`trace-check` validates exported Chrome trace JSON (from `repro --trace`)
against the exporter's event schema.

`metrics-check` validates exported Prometheus text expositions (from
`repro --metrics`): TYPE-declared snake_case pioqo_* names, unique,
integer-valued samples only.

Exits 0 when clean, 1 on violations/stale allows/malformed artifacts, 2
on errors.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pioqo-lint: {e}");
            2
        }
    };
    std::process::exit(code);
}

/// Parse arguments, run the scan, print the report.
fn run(args: &[String]) -> Result<i32, LintError> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_out(USAGE);
        return Ok(0);
    }
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return Ok(2);
    };
    if command == "trace-check" {
        return run_trace_check(rest);
    }
    if command == "metrics-check" {
        return run_metrics_check(rest);
    }
    if command == "explain" {
        return run_explain(rest);
    }
    if command != "check" {
        return Err(LintError(format!(
            "unknown command {command:?}; only `check`, `explain`, `trace-check`, and \
             `metrics-check` are supported"
        )));
    }

    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| LintError("--root needs a value".to_string()))?,
                );
            }
            "--config" => {
                config_path =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LintError("--config needs a value".to_string())
                    })?));
            }
            "--json" => json = true,
            "--sarif" => {
                sarif_path =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LintError("--sarif needs a file path".to_string())
                    })?));
            }
            other => return Err(LintError(format!("unknown flag {other:?}"))),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = load_config(&config_path)?;
    let report = check_workspace(&root, &config)?;

    if let Some(path) = sarif_path {
        std::fs::write(&path, report.to_sarif())
            .map_err(|e| LintError(format!("cannot write {}: {e}", path.display())))?;
    }
    if json {
        let rendered = serde_json::to_string_pretty(&report)
            .map_err(|e| LintError(format!("cannot serialize report: {e}")))?;
        print_out(&rendered);
    } else {
        let table = report.render_table();
        print_out(table.trim_end_matches('\n'));
    }
    Ok(if report.is_clean() { 0 } else { 1 })
}

/// Print the rationale for one rule identifier.
fn run_explain(args: &[String]) -> Result<i32, LintError> {
    let [rule] = args else {
        return Err(LintError(
            "explain takes exactly one rule identifier (e.g. `pioqo-lint explain D9`)".to_string(),
        ));
    };
    let id = rule.to_ascii_uppercase();
    match pioqo_lint::explain::rationale(&id) {
        Some(text) => {
            print_out(text);
            Ok(0)
        }
        None => Err(LintError(format!(
            "unknown rule {rule:?}; known rules: {}",
            pioqo_lint::rules::RULE_IDS.join(", ")
        ))),
    }
}

/// Validate each named Chrome trace JSON file against the exporter's
/// schema; exit 1 on the first malformed document.
fn run_trace_check(files: &[String]) -> Result<i32, LintError> {
    if files.is_empty() {
        return Err(LintError(
            "trace-check needs at least one trace JSON file".to_string(),
        ));
    }
    let mut code = 0;
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| LintError(format!("cannot read {file}: {e}")))?;
        match pioqo_lint::validate_chrome_trace(&text) {
            Ok(events) => print_out(&format!("{file}: ok ({events} events)")),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                code = 1;
            }
        }
    }
    Ok(code)
}

/// Validate each named Prometheus exposition file against the metrics
/// exporter's schema; exit 1 when any document is malformed.
fn run_metrics_check(files: &[String]) -> Result<i32, LintError> {
    if files.is_empty() {
        return Err(LintError(
            "metrics-check needs at least one Prometheus exposition file".to_string(),
        ));
    }
    let mut code = 0;
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| LintError(format!("cannot read {file}: {e}")))?;
        match pioqo_lint::validate_prometheus(&text) {
            Ok(samples) => print_out(&format!("{file}: ok ({samples} samples)")),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                code = 1;
            }
        }
    }
    Ok(code)
}

/// Print a line to stdout, swallowing write errors: when the consumer
/// closes the pipe early (`pioqo-lint check | head`), a failed write must
/// not panic — the exit code still carries the verdict.
fn print_out(text: &str) {
    let mut stdout = std::io::stdout().lock();
    let _ = writeln!(stdout, "{text}");
}
