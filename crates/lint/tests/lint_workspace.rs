//! Tier-1 integration tests: the real workspace must be clean under the
//! committed `lint.toml`, and the known-bad fixture tree must trip every
//! rule. Both call the library API directly so `cargo test` needs no
//! nested cargo invocation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// `<repo root>` — the lint crate lives at `<root>/crates/lint`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate manifest dir has a crates/ parent and a workspace root")
        .to_path_buf()
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_workspace")
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = workspace_root();
    let config = pioqo_lint::load_config(&root.join("lint.toml"))
        .expect("workspace lint.toml parses without errors");
    let report = pioqo_lint::check_workspace(&root, &config)
        .expect("workspace scan reads every crate source file");
    assert!(
        report.is_clean(),
        "workspace has lint violations or stale allowlist entries:\n{}",
        report.render_table()
    );
    assert!(
        report.stale_allows.is_empty(),
        "lint.toml carries entries that suppress nothing: {:?}",
        report.stale_allows
    );
    assert!(
        report.files_checked > 40,
        "scan looks truncated: only {} files checked",
        report.files_checked
    );
}

#[test]
fn fixtures_trip_every_rule() {
    let report = pioqo_lint::check_workspace(&fixture_root(), &pioqo_lint::LintConfig::default())
        .expect("fixture scan succeeds");
    assert!(!report.is_clean());

    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    let expected: BTreeSet<&str> = ["D1", "D2", "D3", "D4", "D5", "D6", "D7"].into();
    assert_eq!(
        fired,
        expected,
        "every textual rule D1-D7 must fire on the known-bad fixture (the \
         flow rules D8-D11 have their own fixture tree):\n{}",
        report.render_table()
    );

    // All findings point into the bad crate; the clean fixture crate and
    // the #[cfg(test)] region of the bad crate stay silent.
    for d in &report.diagnostics {
        assert_eq!(
            d.path, "crates/simkit/src/lib.rs",
            "unexpected finding outside the known-bad file: {d:?}"
        );
    }
    let test_region_line = 51; // the #[cfg(test)] attribute in the fixture
    for d in &report.diagnostics {
        assert!(
            d.line < test_region_line,
            "finding leaked out of the exempt test region: {d:?}"
        );
    }

    // The wall-clock trace sink (lines 37-48) must trip D1: a sink runs
    // inside the simulation, so reading SystemTime there is exactly the
    // determinism leak the observability layer must never introduce.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "D1" && (37..test_region_line).contains(&d.line)),
        "no D1 finding on the wall-clock trace sink:\n{}",
        report.render_table()
    );
}

/// The concurrency layer lives in `exec/src/session.rs`; `exec` is in the
/// sim-crate determinism set, and module files must get the same scrutiny
/// as the crate root. The fixture plants the three classic multi-session
/// determinism bugs (wall-clock admission stamps, HashMap session tables,
/// host threads) in a session module and expects D1, D3 and D7 to fire
/// there — and nowhere else in the tree.
#[test]
fn session_module_is_in_the_sim_crate_determinism_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("session_module");
    let report = pioqo_lint::check_workspace(&root, &pioqo_lint::LintConfig::default())
        .expect("session fixture scan succeeds");

    for d in &report.diagnostics {
        assert_eq!(
            d.path, "crates/exec/src/session.rs",
            "the clean crate root must stay silent: {d:?}"
        );
    }
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    for rule in ["D1", "D3", "D7"] {
        assert!(
            fired.contains(rule),
            "{rule} must fire on the session module:\n{}",
            report.render_table()
        );
    }
}

/// The query layer (`exec/src/query.rs`, `exec/src/join.rs`) is sim-crate
/// code like any other executor module. The fixture plants the three bugs
/// a predicate/join layer is most tempted by — wall-clock strategy timing
/// (D1), a hasher-ordered join build table (D3), and a cloned RNG stream
/// jittering spill partitions (D8) — and expects all three to fire in the
/// query module, and nowhere else in the tree.
#[test]
fn query_module_is_in_the_sim_crate_determinism_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("query_module");
    let report = pioqo_lint::check_workspace(&root, &pioqo_lint::LintConfig::default())
        .expect("query fixture scan succeeds");

    for d in &report.diagnostics {
        assert_eq!(
            d.path, "crates/exec/src/query.rs",
            "the clean crate root must stay silent: {d:?}"
        );
    }
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    for rule in ["D1", "D3", "D8"] {
        assert!(
            fired.contains(rule),
            "{rule} must fire on the query module:\n{}",
            report.render_table()
        );
    }
}

/// The write path lives in `bufpool/src/wal.rs` and `exec/src/write.rs`;
/// both crates are in the sim-crate determinism set, so a WAL module that
/// stamps commits with the host's wall clock must trip D1 exactly as the
/// crate root would. The fixture plants `SystemTime::now()` in a WAL
/// append and expects D1 there — and nothing from the clean crate root.
#[test]
fn wal_module_is_in_the_sim_crate_determinism_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("wal_module");
    let report = pioqo_lint::check_workspace(&root, &pioqo_lint::LintConfig::default())
        .expect("wal fixture scan succeeds");

    for d in &report.diagnostics {
        assert_eq!(
            d.path, "crates/bufpool/src/wal.rs",
            "the clean crate root must stay silent: {d:?}"
        );
    }
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "D1" && d.snippet.contains("SystemTime")),
        "D1 must fire on the wall-clock WAL stamp:\n{}",
        report.render_table()
    );
}

/// A metrics sink that stamps samples with the host clock breaks the
/// byte-determinism contract of the metrics layer; `obs` is a sim crate,
/// so D1 must fire on it. The same tree carries the harness-profiler
/// near-miss: a `profiler` crate reading `Instant` by design, which D1
/// also flags under the default config — and which the workspace-style
/// allowlist entry must suppress *as a used (non-stale) entry* while
/// leaving the sim-crate finding alone.
#[test]
fn wall_clock_metrics_sink_trips_d1_and_profiler_allow_is_a_near_miss() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("metrics_module");

    // Default config: both the sim-crate sink and the harness profiler
    // read the wall clock, so D1 fires in both files.
    let report = pioqo_lint::check_workspace(&root, &pioqo_lint::LintConfig::default())
        .expect("metrics fixture scan succeeds");
    let d1_paths: BTreeSet<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D1")
        .map(|d| d.path.as_str())
        .collect();
    assert!(
        d1_paths.contains("crates/obs/src/metrics_sink.rs"),
        "D1 must fire on the wall-clock metrics sink:\n{}",
        report.render_table()
    );
    assert!(
        d1_paths.contains("crates/profiler/src/lib.rs"),
        "D1 must fire on the unallowlisted profiler:\n{}",
        report.render_table()
    );

    // With the workspace-style allow entry, the profiler goes quiet (and
    // the entry counts as used), while the sim-crate sink still fails.
    let config = pioqo_lint::config::parse_config(
        r#"
[[allow]]
rule = "D1"
path = "crates/profiler/src/lib.rs"
reason = "harness-only self-profiler; wall clock is its job"
"#,
    )
    .expect("inline config parses");
    let report =
        pioqo_lint::check_workspace(&root, &config).expect("metrics fixture scan succeeds");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path == "crates/profiler/src/lib.rs"),
        "the allowlisted profiler must stay silent:\n{}",
        report.render_table()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "D1" && d.path == "crates/obs/src/metrics_sink.rs"),
        "the sim-crate sink must keep failing:\n{}",
        report.render_table()
    );
    assert!(
        report.stale_allows.is_empty(),
        "the profiler allow entry suppressed a real finding and must not be stale: {:?}",
        report.stale_allows
    );
}

/// The flow-sensitive rules get their own fixture tree: every planted
/// shape in `flow_bad.rs` must fire (three D8 shapes, two D9 leaks, two
/// D10 causality breaks, two D11 shim calls), and the near-miss file
/// `flow_ok.rs` — each function one step away from a violation — must
/// stay completely silent.
#[test]
fn flow_fixtures_trip_d8_to_d11_and_near_misses_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("flow_rules");
    let report = pioqo_lint::check_workspace(&root, &pioqo_lint::LintConfig::default())
        .expect("flow fixture scan succeeds");

    for d in &report.diagnostics {
        assert_eq!(
            d.path, "crates/exec/src/flow_bad.rs",
            "near-miss or crate root produced a false positive: {d:?}"
        );
    }
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    let expected: BTreeSet<&str> = ["D8", "D9", "D10", "D11"].into();
    assert_eq!(
        fired,
        expected,
        "every flow rule must fire on flow_bad.rs:\n{}",
        report.render_table()
    );
    let count = |rule: &str| report.diagnostics.iter().filter(|d| d.rule == rule).count();
    assert_eq!(
        count("D8"),
        3,
        "clone + coupled fork + shared session stream"
    );
    assert_eq!(count("D9"), 2, "?-exit leak + early-return leak");
    assert_eq!(count("D10"), 2, "direct now-minus + traced through lets");
    assert_eq!(count("D11"), 2, "free fn + Type::method shim calls");
}

/// Allowlist entries that no longer suppress anything are themselves
/// errors: a matched entry stays quiet, an unmatched one is reported as
/// stale and makes the report dirty.
#[test]
fn stale_allowlist_entries_are_reported() {
    let config = pioqo_lint::config::parse_config(
        r#"
[[allow]]
rule = "D1"
path = "crates/simkit/src/lib.rs"
reason = "used entry: the fixture really trips D1 here"

[[allow]]
rule = "D7"
path = "crates/okcrate/src/lib.rs"
reason = "stale entry: the clean crate never trips D7"
"#,
    )
    .expect("inline config parses");
    let report =
        pioqo_lint::check_workspace(&fixture_root(), &config).expect("fixture scan succeeds");
    assert_eq!(
        report.stale_allows,
        vec!["D7 crates/okcrate/src/lib.rs".to_string()],
        "exactly the unmatched entry is stale"
    );
    assert!(!report.is_clean(), "stale allows must fail the check");
    assert!(
        report.render_table().contains("STALE ALLOW"),
        "stale entries must show up in the human-readable table"
    );
}

/// The SARIF export must be a parseable 2.1.0 log carrying one result
/// per diagnostic with rule metadata and physical locations.
#[test]
fn sarif_export_is_well_formed() {
    let report = pioqo_lint::check_workspace(&fixture_root(), &pioqo_lint::LintConfig::default())
        .expect("fixture scan succeeds");
    let sarif = report.to_sarif();
    for key in [
        "\"version\": \"2.1.0\"",
        "\"pioqo-lint\"",
        "\"ruleId\"",
        "\"physicalLocation\"",
        "\"startLine\"",
        "\"executionSuccessful\"",
    ] {
        assert!(sarif.contains(key), "SARIF log missing {key}:\n{sarif}");
    }
    let parsed = serde_json::from_str_content(&sarif).expect("SARIF log parses as JSON");
    let _ = parsed;
}

#[test]
fn allowlist_suppresses_matching_rule_only() {
    let config = pioqo_lint::config::parse_config(
        r#"
[[allow]]
rule = "D1"
path = "crates/simkit/src/lib.rs"
reason = "fixture exercise"
"#,
    )
    .expect("inline config parses");
    let report =
        pioqo_lint::check_workspace(&fixture_root(), &config).expect("fixture scan succeeds");
    assert!(!report.diagnostics.iter().any(|d| d.rule == "D1"));
    assert!(report.diagnostics.iter().any(|d| d.rule == "D2"));
}

#[test]
fn json_report_is_machine_readable() {
    let report = pioqo_lint::check_workspace(&fixture_root(), &pioqo_lint::LintConfig::default())
        .expect("fixture scan succeeds");
    let json = serde_json::to_string_pretty(&report).expect("report serializes to JSON");
    for key in [
        "\"files_checked\"",
        "\"diagnostics\"",
        "\"rule\"",
        "\"path\"",
        "\"line\"",
        "\"message\"",
        "\"snippet\"",
    ] {
        assert!(json.contains(key), "JSON report missing {key}:\n{json}");
    }
    // The JSON must parse back as a generic document.
    let parsed = serde_json::from_str_content(&json).expect("emitted JSON parses");
    let _ = parsed;
}
