//! # pioqo-obs — deterministic observability
//!
//! A zero-cost-when-disabled tracing and histogram layer for the simulator.
//! Everything here is keyed to *virtual* time ([`pioqo_simkit::SimTime`]) and
//! built exclusively from integer arithmetic and ordered collections, so a
//! trace captured from a run is **byte-identical** across thread counts and
//! across repeated runs — the same invariant the rest of the workspace
//! enforces (lint rules D1–D7).
//!
//! Three pieces:
//!
//! * **Structured event trace** — [`TraceEvent`]s (span begin/end, I/O
//!   submit/complete, buffer-pool hit/miss/evict, retry/backoff/timeout
//!   hedges, calibration probes, queue-depth counters) emitted through the
//!   [`TraceSink`] trait. The default [`NullSink`] reports
//!   `enabled() == false`, so instrumented hot paths skip event
//!   construction entirely; [`RingSink`] records the most recent `capacity`
//!   events in a fixed ring.
//! * **Log-bucketed histograms** — [`Histogram`] uses HDR-style
//!   octave/sub-bucket indexing with *no floating point in bucket
//!   selection*; [`HistSet`] groups the four per-scan distributions
//!   (I/O latency, queue depth, page-wait, retries).
//! * **Metrics registry** — [`MetricsRegistry`] holds integer counters,
//!   gauges, histograms and sim-time [`Series`] reservoirs registered by
//!   static `snake_case` name; [`MetricsSnapshot`] is the mergeable form
//!   rendered by the Prometheus / CSV / JSON exporters, and
//!   [`SloSpec`]/[`evaluate_slos`] turn a snapshot into a machine-readable
//!   pass/fail verdict.
//! * **Exporters** — [`chrome_trace_json`] renders events as Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`, one track
//!   per device channel / worker / operator), and [`HistSet::to_csv`]
//!   renders histogram buckets as CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod hist;
pub mod metrics;
mod sink;

pub use chrome::chrome_trace_json;
pub use event::{EventKind, TraceEvent};
pub use hist::{HistSet, Histogram};
pub use metrics::{
    evaluate_slos, slo_report_json, MetricsRegistry, MetricsSnapshot, Series, SeriesHandle,
    SloCheck, SloSpec, SloVerdict,
};
pub use sink::{NullSink, RingSink, TraceSink};
