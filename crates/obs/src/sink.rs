//! Trace sinks: the emission trait, the no-op default and the ring buffer.

use crate::event::TraceEvent;
use std::collections::BTreeMap;

/// Where instrumented code sends [`TraceEvent`]s.
///
/// Instrumentation sites are expected to guard event *construction* on
/// [`TraceSink::enabled`]: the disabled path (the default [`NullSink`], or a
/// context with no sink installed) must cost one predictable branch and
/// nothing else. Implementations must be deterministic — no wall-clock, no
/// ambient entropy, ordered collections only — so that recorded traces are
/// byte-identical across runs and thread counts.
pub trait TraceSink {
    /// Whether events are being kept. Callers skip payload construction
    /// when this is `false`.
    fn enabled(&self) -> bool;

    /// Intern a track name (one Perfetto thread per track), returning its
    /// stable id. Interning the same name twice returns the same id; ids
    /// are assigned in first-interning order, which is deterministic
    /// because instrumented code runs in virtual-time order.
    fn track(&mut self, name: &str) -> u32;

    /// Record one event.
    fn record(&mut self, ev: TraceEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn track(&mut self, _name: &str) -> u32 {
        0
    }

    #[inline]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` events in a
/// ring, counting (not keeping) everything older. No OS threads, no locks,
/// no allocation after the ring fills — a plain `Vec` with a rotating
/// start index.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    events: Vec<TraceEvent>,
    /// Index of the chronologically oldest retained event.
    start: usize,
    dropped: u64,
    ids: BTreeMap<String, u32>,
    names: Vec<String>,
}

impl RingSink {
    /// A sink retaining at most `capacity` events (must be >= 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        assert!(capacity >= 1, "ring sink needs room for at least one event");
        RingSink {
            cap: capacity,
            events: Vec::new(),
            start: 0,
            dropped: 0,
            ids: BTreeMap::new(),
            names: Vec::new(),
        }
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// Interned track names, indexed by track id.
    pub fn track_names(&self) -> &[String] {
        &self.names
    }

    /// Retained events in recording order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.events.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Render the retained events as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::chrome_trace_json(&self.names, self.events())
    }
}

impl TraceSink for RingSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn track(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.start] = ev;
            self.start += 1;
            if self.start == self.cap {
                self.start = 0;
            }
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use pioqo_simkit::SimTime;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_micros(n),
            track: 0,
            span: n,
            kind: EventKind::PoolHit,
            a: n,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut s = RingSink::with_capacity(3);
        for n in 0..5u64 {
            s.record(ev(n));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.recorded(), 5);
        let spans: Vec<u64> = s.events().map(|e| e.span).collect();
        assert_eq!(spans, vec![2, 3, 4], "oldest-first chronological order");
    }

    #[test]
    fn track_interning_is_stable() {
        let mut s = RingSink::with_capacity(4);
        let a = s.track("io");
        let b = s.track("pool");
        assert_eq!(s.track("io"), a);
        assert_eq!(s.track("pool"), b);
        assert_ne!(a, b);
        assert_eq!(s.track_names(), &["io".to_string(), "pool".to_string()]);
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(ev(1));
        assert_eq!(s.track("anything"), 0);
    }
}
