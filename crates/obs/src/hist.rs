//! HDR-style log-bucketed integer histograms.
//!
//! Bucket selection uses only integer ops (leading-zero count, shifts,
//! masks) so histograms are byte-deterministic on every platform. The
//! layout is the classic octave/sub-bucket scheme: values below 16 get
//! exact unit buckets; above that, each power-of-two octave is split into
//! 8 sub-buckets, bounding relative error at 12.5% while covering the full
//! `u64` range in 496 buckets.

use serde::{Deserialize, Serialize};

/// Values below this have exact one-per-value buckets.
const LINEAR_MAX: u64 = 16;
/// log2 of sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total addressable buckets (value `u64::MAX` lands in the last one).
const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - 1 - SUB_BITS as usize) * SUB as usize;

/// Bucket index for a value — integer ops only.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        LINEAR_MAX as usize + (msb as usize - SUB_BITS as usize - 1) * SUB as usize + sub
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lo(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let oct = (i - LINEAR_MAX as usize) / SUB as usize;
        let sub = ((i - LINEAR_MAX as usize) % SUB as usize) as u64;
        (SUB + sub) << (oct + 1)
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(i + 1) - 1
    }
}

/// A log-bucketed histogram of `u64` samples.
///
/// `buckets` is trimmed to the highest occupied index, so an empty or
/// narrow histogram serializes compactly; [`Histogram::merge`] aligns
/// lengths automatically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts, index 0 upward, trimmed at the top.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty). Floating
    /// point is only used here, for reporting — never in bucket selection.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket holding the `num/den` quantile sample
    /// (0 when empty). `num/den` must be a proportion in `[0, 1]`.
    pub fn quantile_lo(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must lie in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lo(i);
            }
        }
        self.max
    }

    /// Lower bound of the most populated bucket (first wins ties; 0 when
    /// empty). For distributions concentrated below 16 this is exact —
    /// e.g. the modal queue depth of a PIS run.
    pub fn mode_lo(&self) -> u64 {
        let mut best: Option<(usize, u64)> = None;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 && best.is_none_or(|(_, bc)| c > bc) {
                best = Some((i, c));
            }
        }
        best.map_or(0, |(i, _)| bucket_lo(i))
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }

    /// Iterate occupied buckets as `(lo, hi, count)` in ascending value
    /// order. `hi` is inclusive; the top bucket's `hi` is `u64::MAX`.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }

    /// Append `name,bucket_lo,bucket_hi,count` CSV rows for every occupied
    /// bucket.
    pub fn csv_rows(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let _ = writeln!(out, "{name},{},{},{c}", bucket_lo(i), bucket_hi(i));
            }
        }
    }
}

/// The per-scan histogram bundle attached to
/// `pioqo_exec::ScanMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSet {
    /// Per-physical-I/O completion latency, µs.
    pub io_latency_us: Histogram,
    /// Device queue depth sampled at every submission.
    pub queue_depth: Histogram,
    /// Per-logical-read wall time from issue to settle, µs (the time an
    /// operator phase spends waiting on a page).
    pub page_wait_us: Histogram,
    /// Retries per settled logical read (0 for clean reads).
    pub retries: Histogram,
    /// Group-commit acknowledgement latency, µs: from a commit's last WAL
    /// append to the contiguous-durable ack that releases the writer.
    pub commit_ack_us: Histogram,
}

impl HistSet {
    /// An empty set.
    pub fn new() -> HistSet {
        HistSet::default()
    }

    /// True when every member histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.io_latency_us.is_empty()
            && self.queue_depth.is_empty()
            && self.page_wait_us.is_empty()
            && self.retries.is_empty()
            && self.commit_ack_us.is_empty()
    }

    /// Fold another set into this one (par_map reduction / trace summary).
    pub fn merge(&mut self, other: &HistSet) {
        self.io_latency_us.merge(&other.io_latency_us);
        self.queue_depth.merge(&other.queue_depth);
        self.page_wait_us.merge(&other.page_wait_us);
        self.retries.merge(&other.retries);
        self.commit_ack_us.merge(&other.commit_ack_us);
    }

    /// Render every occupied bucket as CSV with a `hist,bucket_lo,
    /// bucket_hi,count` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("hist,bucket_lo,bucket_hi,count\n");
        self.io_latency_us.csv_rows("io_latency_us", &mut out);
        self.queue_depth.csv_rows("queue_depth", &mut out);
        self.page_wait_us.csv_rows("page_wait_us", &mut out);
        self.retries.csv_rows("retries", &mut out);
        self.commit_ack_us.csv_rows("commit_ack_us", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        // Every sampled value must land in a bucket whose [lo, hi] range
        // contains it, and bucket index must be monotone in the value.
        let mut prev_idx = 0usize;
        let samples: Vec<u64> = (0..100)
            .chain((1..40).map(|k| (1u64 << k) - 1))
            .chain((1..40).map(|k| 1u64 << k))
            .chain((1..40).map(|k| (1u64 << k) + 1))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for v in sorted {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v && v <= bucket_hi(i), "v={v} i={i}");
            assert!(i >= prev_idx, "bucket index must be monotone at v={v}");
            assert!(i < NUM_BUCKETS);
            prev_idx = i;
        }
    }

    #[test]
    fn every_bucket_is_exactly_covered() {
        // Exhaustive audit over all 496 buckets: each bucket's own lo and
        // hi must index back to it, ranges must tile the u64 domain with no
        // gap or overlap, and the top bucket must absorb u64::MAX. This
        // pins the two seams where an off-by-one could hide: the
        // linear-to-octave boundary at 16 and each octave's sub-bucket
        // rollover.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(NUM_BUCKETS - 1), u64::MAX);
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = (bucket_lo(i), bucket_hi(i));
            assert!(lo <= hi, "bucket {i} inverted: [{lo}, {hi}]");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i} maps elsewhere");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i} maps elsewhere");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(
                    bucket_lo(i + 1),
                    hi + 1,
                    "gap or overlap between buckets {i} and {}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn zero_and_max_edge_cases() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!((h.min, h.max, h.sum, h.count), (0, 0, 0, 1));
        assert_eq!(h.quantile_lo(99, 100), 0);
        assert_eq!(h.mode_lo(), 0);

        // u64::MAX lands in the final bucket and the sum saturates instead
        // of wrapping.
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.sum, u64::MAX, "sum must saturate at u64::MAX");
        assert_eq!(h.buckets.len(), NUM_BUCKETS);
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 2);
        // The p99 of {0, MAX, MAX} sits in the top bucket; its reported
        // lower bound is that bucket's lo, and the bucket contains MAX.
        let p99 = h.quantile_lo(99, 100);
        assert_eq!(p99, bucket_lo(NUM_BUCKETS - 1));
        assert!(bucket_hi(bucket_index(p99)) == u64::MAX);

        // Merging a MAX-heavy histogram also saturates rather than wraps.
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 3);
    }

    #[test]
    fn linear_to_octave_seam_is_tight() {
        // 15 is the last exact linear bucket, 16 opens the first octave.
        assert_eq!(bucket_index(15), 15);
        assert_eq!((bucket_lo(15), bucket_hi(15)), (15, 15));
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_lo(16), 16);
        assert!(bucket_hi(16) >= 16);
        // First octave has width-2 buckets: 30 and 31 share one.
        assert_eq!(bucket_index(30), bucket_index(31));
        assert_ne!(bucket_index(29), bucket_index(30));
    }

    #[test]
    fn occupied_buckets_iterator_matches_csv() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 100, u64::MAX] {
            h.record(v);
        }
        let rows: Vec<(u64, u64, u64)> = h.occupied_buckets().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (3, 3, 2));
        assert_eq!(rows[2].1, u64::MAX);
        let mut csv = String::new();
        h.csv_rows("x", &mut csv);
        assert_eq!(csv.lines().count(), rows.len());
        for (lo, hi, c) in rows {
            assert!(csv.contains(&format!("x,{lo},{hi},{c}")));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(h.buckets[v as usize], 1);
        }
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 15);
        assert_eq!(h.count, 16);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 30, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_hi(i) - bucket_lo(i);
            assert!(
                (width as f64) <= bucket_lo(i) as f64 * 0.125 + 1.0,
                "bucket at {v} too wide: [{}, {}]",
                bucket_lo(i),
                bucket_hi(i)
            );
        }
    }

    #[test]
    fn quantiles_and_mode() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.mode_lo(), 8);
        assert_eq!(h.quantile_lo(50, 100), 8);
        assert!(h.quantile_lo(99, 100) >= 960);
        assert_eq!(h.quantile_lo(0, 100), 8, "q0 is the first sample");
    }

    #[test]
    fn merge_matches_combined_recording() {
        let vals_a = [0u64, 5, 17, 300, 1 << 20];
        let vals_b = [3u64, 17, 999_999];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &vals_a {
            a.record(v);
            both.record(v);
        }
        for &v in &vals_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn histset_csv_has_header_and_rows() {
        let mut hs = HistSet::new();
        hs.queue_depth.record(8);
        hs.queue_depth.record(8);
        hs.io_latency_us.record(120);
        let csv = hs.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("hist,bucket_lo,bucket_hi,count"));
        assert!(csv.contains("queue_depth,8,8,2"));
        assert!(csv.contains("io_latency_us,"));
    }

    #[test]
    fn serde_roundtrip_is_exact() {
        let mut hs = HistSet::new();
        for v in [1u64, 9, 1000, 1 << 33] {
            hs.io_latency_us.record(v);
            hs.page_wait_us.record(v * 2);
        }
        hs.retries.record(0);
        let json = serde_json::to_string(&hs).expect("histogram set serializes");
        let back: HistSet = serde_json::from_str(&json).expect("histogram set deserializes");
        assert_eq!(hs, back);
    }
}
