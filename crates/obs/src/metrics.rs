//! Deterministic, integer-only metrics registry with sim-time series.
//!
//! This is the "what is the system doing over time" layer that complements
//! the event-level tracing in [`crate::sink`]: typed counters, gauges and
//! histograms registered by **static name**, plus time-series reservoirs
//! sampled on a fixed **sim-time** cadence. Everything is integer `u64`
//! arithmetic on the virtual clock, so the rendered exports are
//! byte-identical across harness thread counts and double runs — the same
//! invariant the trace exporter holds.
//!
//! Design rules:
//!
//! - **Names are `&'static str`** in `snake_case`. The registry stores them
//!   in `BTreeMap`s, so every iteration (and therefore every exporter) is
//!   sorted by name with no hashing nondeterminism.
//! - **The disabled registry allocates nothing.** [`MetricsRegistry::disabled`]
//!   starts with empty maps and every mutator early-returns before touching
//!   them; hot paths pay one branch. This mirrors the `NullSink` contract of
//!   the trace layer.
//! - **Series sample on a cadence.** A [`Series`] holds `(tick, value)`
//!   pairs where `tick = sim_nanos / cadence_nanos`; repeated samples inside
//!   one cadence window collapse to the last value. Callers may sample from
//!   event handlers at arbitrary sim times — the reservoir stays bounded by
//!   run length / cadence, not by event count.
//! - **Exporters are rendered from snapshots.** A [`MetricsSnapshot`] is the
//!   `String`-keyed, mergeable form: per-cell registries are snapshotted
//!   under a sanitized cell prefix and merged in cell submission order, the
//!   same scheme `workload::trace` uses for track names.
//!
//! Wall-clock time never enters this module; the harness-side self-profiler
//! (`pioqo-profiler`) owns that domain separately so lint rule D1 keeps
//! meaning inside sim crates.

use crate::hist::Histogram;
use pioqo_simkit::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default sampling cadence for time series: 1ms of sim time.
pub const DEFAULT_CADENCE: SimDuration = SimDuration::from_millis(1);

/// A bounded sim-time series reservoir: `(tick, value)` pairs on a fixed
/// cadence, last-value-wins within a cadence window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Series {
    /// Sampling cadence in sim nanoseconds (tick width).
    pub cadence_ns: u64,
    /// `(tick, value)` pairs in strictly increasing tick order.
    pub points: Vec<(u64, u64)>,
}

impl Series {
    fn new(cadence: SimDuration) -> Self {
        Series {
            cadence_ns: cadence.as_nanos().max(1),
            points: Vec::new(),
        }
    }

    /// Record `value` at sim time `t`. Samples landing in an already-closed
    /// (earlier) window are collapsed into the latest window instead of
    /// violating tick monotonicity.
    pub fn sample(&mut self, t: SimTime, value: u64) {
        let tick = t.as_nanos() / self.cadence_ns;
        match self.points.last_mut() {
            Some(last) if last.0 >= tick => last.1 = value,
            _ => self.points.push((tick, value)),
        }
    }

    /// Last sampled value, or 0 when the series is empty.
    pub fn last_value(&self) -> u64 {
        self.points.last().map(|&(_, v)| v).unwrap_or(0)
    }

    /// Largest sampled value, or 0 when the series is empty.
    pub fn max_value(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }
}

/// Deterministic integer metrics registry. See the module docs for the
/// contract; construct with [`MetricsRegistry::disabled`] (free) or
/// [`MetricsRegistry::enabled`] (collecting).
#[derive(Debug)]
pub struct MetricsRegistry {
    on: bool,
    cadence: SimDuration,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    // Series live in a Vec so a pre-resolved `SeriesHandle` can index in
    // O(1) on the per-cadence-boundary hot path; the BTreeMap only maps
    // names to slots (and keeps snapshot order name-sorted).
    series_index: BTreeMap<&'static str, usize>,
    series: Vec<(&'static str, Series)>,
}

/// A pre-resolved slot in one registry's series table. The engine samples
/// a fixed set of series at every cadence boundary; resolving the names
/// once (at registry install time) and sampling by index keeps the
/// enabled hot path free of string-keyed map walks. A handle is only
/// meaningful on the registry that issued it.
#[derive(Debug, Clone, Copy)]
pub struct SeriesHandle(usize);

impl SeriesHandle {
    /// A handle that records nothing — what a disabled registry issues.
    pub const INERT: SeriesHandle = SeriesHandle(usize::MAX);
}

impl MetricsRegistry {
    /// A registry that records nothing and never allocates. Every mutator
    /// early-returns; the maps stay at length **and capacity** zero, which
    /// the determinism suite asserts as the zero-overhead contract.
    pub fn disabled() -> Self {
        MetricsRegistry {
            on: false,
            cadence: DEFAULT_CADENCE,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            series_index: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// A collecting registry whose series sample on `cadence` of sim time.
    pub fn enabled(cadence: SimDuration) -> Self {
        MetricsRegistry {
            on: true,
            ..MetricsRegistry::disabled()
        }
        .with_cadence(cadence)
    }

    fn with_cadence(mut self, cadence: SimDuration) -> Self {
        self.cadence = if cadence.is_zero() {
            DEFAULT_CADENCE
        } else {
            cadence
        };
        self
    }

    /// True when this registry records.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Sim-time series sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// True when nothing has been recorded (always true while disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.series.is_empty()
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if !self.on {
            return;
        }
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        if !self.on {
            return;
        }
        self.gauges.insert(name, value);
    }

    /// Record one observation into the named histogram.
    pub fn hist_record(&mut self, name: &'static str, value: u64) {
        if !self.on {
            return;
        }
        self.hists.entry(name).or_default().record(value);
    }

    /// Merge a pre-built histogram into the named histogram (used when
    /// folding an existing `HistSet` into the registry at end of run).
    pub fn hist_merge(&mut self, name: &'static str, other: &Histogram) {
        if !self.on || other.count == 0 {
            return;
        }
        self.hists.entry(name).or_default().merge(other);
    }

    /// Sample the named time series at sim time `t`.
    pub fn series_sample(&mut self, name: &'static str, t: SimTime, value: u64) {
        if !self.on {
            return;
        }
        let slot = self.series_slot(name);
        self.series[slot].1.sample(t, value);
    }

    /// Resolve (creating if needed) the slot for a named series. Returns
    /// [`SeriesHandle::INERT`] from a disabled registry, which
    /// [`series_sample_at`](Self::series_sample_at) ignores — so callers
    /// can resolve unconditionally without breaking the zero-allocation
    /// contract of the disabled path.
    pub fn series_handle(&mut self, name: &'static str) -> SeriesHandle {
        if !self.on {
            return SeriesHandle::INERT;
        }
        SeriesHandle(self.series_slot(name))
    }

    /// Sample through a pre-resolved handle: one bounds check and an
    /// indexed write, no name lookup. The per-cadence-boundary sampler in
    /// the engine runs entirely on this path.
    #[inline]
    pub fn series_sample_at(&mut self, handle: SeriesHandle, t: SimTime, value: u64) {
        if let Some((_, s)) = self.series.get_mut(handle.0) {
            s.sample(t, value);
        }
    }

    fn series_slot(&mut self, name: &'static str) -> usize {
        if let Some(&slot) = self.series_index.get(name) {
            return slot;
        }
        let slot = self.series.len();
        self.series.push((name, Series::new(self.cadence)));
        self.series_index.insert(name, slot);
        slot
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Named histogram, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Named series, if any sample was recorded.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series_index
            .get(name)
            .map(|&slot| &self.series[slot].1)
    }

    /// Snapshot into the `String`-keyed mergeable form, prefixing every
    /// metric name with `sanitize_prefix(prefix)` + `_` (no prefix when
    /// `prefix` is empty). Snapshots from many cells merge in submission
    /// order into one exportable document.
    pub fn snapshot(&self, prefix: &str) -> MetricsSnapshot {
        let key = |name: &str| -> String {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{}_{name}", sanitize_prefix(prefix))
            }
        };
        MetricsSnapshot {
            counters: self.counters.iter().map(|(n, v)| (key(n), *v)).collect(),
            gauges: self.gauges.iter().map(|(n, v)| (key(n), *v)).collect(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| (key(n), h.clone()))
                .collect(),
            series: self
                .series_index
                .iter()
                .map(|(n, &slot)| (key(n), self.series[slot].1.clone()))
                .collect(),
        }
    }
}

/// Lower-case a cell label and fold every non `[a-z0-9]` run into a single
/// `_` so it is a legal Prometheus metric-name prefix
/// (`E33-SSD/PIS8@0.01` becomes `e33_ssd_pis8_0_01`).
pub fn sanitize_prefix(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_sep = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

/// `String`-keyed, mergeable snapshot of one or more registries; the form
/// all exporters render from.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by full (possibly prefixed) name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by full name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by full name.
    pub hists: BTreeMap<String, Histogram>,
    /// Sim-time series by full name.
    pub series: BTreeMap<String, Series>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`. Name collisions add counters, overwrite
    /// gauges, merge histograms and append series points.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (n, v) in &other.counters {
            *self.counters.entry(n.clone()).or_insert(0) += v;
        }
        for (n, v) in &other.gauges {
            self.gauges.insert(n.clone(), *v);
        }
        for (n, h) in &other.hists {
            self.hists.entry(n.clone()).or_default().merge(h);
        }
        for (n, s) in &other.series {
            self.series
                .entry(n.clone())
                .and_modify(|mine| mine.points.extend_from_slice(&s.points))
                .or_insert_with(|| s.clone());
        }
    }

    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.series.is_empty()
    }

    /// Render the Prometheus text exposition format (v0.0.4). Counters and
    /// gauges are plain samples; histograms emit cumulative `_bucket{le=..}`
    /// samples over *occupied* buckets plus `+Inf`/`_sum`/`_count`; series
    /// contribute their last value as a gauge (the full series lives in the
    /// CSV export). All values are integers and the output is sorted by
    /// metric name, so the document is byte-stable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE pioqo_{name} counter");
            let _ = writeln!(out, "pioqo_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE pioqo_{name} gauge");
            let _ = writeln!(out, "pioqo_{name} {v}");
        }
        for (name, s) in &self.series {
            let _ = writeln!(out, "# TYPE pioqo_{name} gauge");
            let _ = writeln!(out, "pioqo_{name} {}", s.last_value());
        }
        for (name, h) in &self.hists {
            let _ = writeln!(out, "# TYPE pioqo_{name} histogram");
            let mut cum = 0u64;
            for (_lo, hi, count) in h.occupied_buckets() {
                cum += count;
                if hi == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "pioqo_{name}_bucket{{le=\"{hi}\"}} {cum}");
            }
            let _ = writeln!(out, "pioqo_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "pioqo_{name}_sum {}", h.sum);
            let _ = writeln!(out, "pioqo_{name}_count {}", h.count);
        }
        out
    }

    /// Render every time series as Chrome trace-event counter tracks
    /// (`ph: "C"`), one named counter per series. The document loads in
    /// Perfetto next to (or merged with) the span trace from
    /// `chrome_trace_json`, and passes the same `trace-check` schema.
    pub fn chrome_counters_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"pioqo-metrics\"}}",
        );
        for (name, s) in &self.series {
            for &(tick, v) in &s.points {
                let t_us = tick.saturating_mul(s.cadence_ns) / 1_000;
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\
                     \"ts\":{t_us}.000,\"args\":{{\"value\":{v}}}}}"
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Render every time series as CSV: `series,t_us,value`, sorted by
    /// series name and tick.
    pub fn series_csv(&self) -> String {
        let mut out = String::from("series,t_us,value\n");
        for (name, s) in &self.series {
            for &(tick, v) in &s.points {
                let t_us = tick.saturating_mul(s.cadence_ns) / 1_000;
                let _ = writeln!(out, "{name},{t_us},{v}");
            }
        }
        out
    }

    /// Render a compact machine-readable summary: every counter and gauge,
    /// five-number digests per histogram, and per-series point counts with
    /// last/max values. Integer-only and sorted, hence byte-stable.
    pub fn summary_json(&self) -> String {
        #[derive(Serialize)]
        struct HistDigest {
            count: u64,
            sum: u64,
            min: u64,
            max: u64,
            p50: u64,
            p99: u64,
        }
        #[derive(Serialize)]
        struct SeriesDigest {
            points: u64,
            cadence_ns: u64,
            last: u64,
            max: u64,
        }
        #[derive(Serialize)]
        struct Summary {
            counters: BTreeMap<String, u64>,
            gauges: BTreeMap<String, u64>,
            hists: BTreeMap<String, HistDigest>,
            series: BTreeMap<String, SeriesDigest>,
        }
        let summary = Summary {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        HistDigest {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            p50: h.quantile_lo(50, 100),
                            p99: h.quantile_lo(99, 100),
                        },
                    )
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|(n, s)| {
                    (
                        n.clone(),
                        SeriesDigest {
                            points: s.points.len() as u64,
                            cadence_ns: s.cadence_ns,
                            last: s.last_value(),
                            max: s.max_value(),
                        },
                    )
                })
                .collect(),
        };
        serde_json::to_string_pretty(&summary).expect("metrics summary serializes to JSON")
    }
}

/// One service-level check against a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum SloCheck {
    /// The histogram's integer p99 lower bound must be `<= limit`.
    HistP99AtMost {
        /// Full histogram name in the snapshot.
        hist: String,
        /// Inclusive upper limit.
        limit: u64,
    },
    /// The counter must be `>= limit`.
    CounterAtLeast {
        /// Full counter name in the snapshot.
        counter: String,
        /// Inclusive lower limit.
        limit: u64,
    },
    /// The counter must be `<= limit`.
    CounterAtMost {
        /// Full counter name in the snapshot.
        counter: String,
        /// Inclusive upper limit.
        limit: u64,
    },
    /// The gauge must be `<= limit`.
    GaugeAtMost {
        /// Full gauge name in the snapshot.
        gauge: String,
        /// Inclusive upper limit.
        limit: u64,
    },
    /// The series' final sampled value must be `<= limit`.
    SeriesLastAtMost {
        /// Full series name in the snapshot.
        series: String,
        /// Inclusive upper limit.
        limit: u64,
    },
    /// `num * 1000 / den` (integer parts-per-mille over two counters) must
    /// be `<= limit`; fails when `den` is zero or either counter is absent.
    RatioPermilleAtMost {
        /// Numerator counter name.
        num: String,
        /// Denominator counter name.
        den: String,
        /// Inclusive upper limit in parts-per-mille.
        limit: u64,
    },
}

/// A named SLO: a check plus the label the verdict reports under.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SloSpec {
    /// Verdict label (snake_case by convention).
    pub name: String,
    /// The check to evaluate.
    pub check: SloCheck,
}

/// Outcome of evaluating one [`SloSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SloVerdict {
    /// The spec's label.
    pub name: String,
    /// True when the referenced metric exists (an absent metric fails).
    pub found: bool,
    /// Observed integer value (0 when absent).
    pub observed: u64,
    /// The spec's limit.
    pub limit: u64,
    /// Final verdict: found and within limit.
    pub pass: bool,
}

/// Evaluate every spec against the snapshot. Absent metrics fail their
/// check: an SLO over a metric nobody recorded is a wiring bug, not a pass.
pub fn evaluate_slos(snapshot: &MetricsSnapshot, specs: &[SloSpec]) -> Vec<SloVerdict> {
    specs
        .iter()
        .map(|spec| {
            let (found, observed, limit, within) = match &spec.check {
                SloCheck::HistP99AtMost { hist, limit } => match snapshot.hists.get(hist) {
                    Some(h) if h.count > 0 => {
                        let p99 = h.quantile_lo(99, 100);
                        (true, p99, *limit, p99 <= *limit)
                    }
                    _ => (false, 0, *limit, false),
                },
                SloCheck::CounterAtLeast { counter, limit } => {
                    match snapshot.counters.get(counter) {
                        Some(&v) => (true, v, *limit, v >= *limit),
                        None => (false, 0, *limit, false),
                    }
                }
                SloCheck::CounterAtMost { counter, limit } => {
                    match snapshot.counters.get(counter) {
                        Some(&v) => (true, v, *limit, v <= *limit),
                        None => (false, 0, *limit, false),
                    }
                }
                SloCheck::GaugeAtMost { gauge, limit } => match snapshot.gauges.get(gauge) {
                    Some(&v) => (true, v, *limit, v <= *limit),
                    None => (false, 0, *limit, false),
                },
                SloCheck::SeriesLastAtMost { series, limit } => match snapshot.series.get(series) {
                    Some(s) if !s.points.is_empty() => {
                        let v = s.last_value();
                        (true, v, *limit, v <= *limit)
                    }
                    _ => (false, 0, *limit, false),
                },
                SloCheck::RatioPermilleAtMost { num, den, limit } => {
                    match (snapshot.counters.get(num), snapshot.counters.get(den)) {
                        (Some(&n), Some(&d)) if d > 0 => {
                            let permille = n.saturating_mul(1000) / d;
                            (true, permille, *limit, permille <= *limit)
                        }
                        _ => (false, 0, *limit, false),
                    }
                }
            };
            SloVerdict {
                name: spec.name.clone(),
                found,
                observed,
                limit,
                pass: found && within,
            }
        })
        .collect()
}

/// Render verdicts as the machine-readable report `scripts/bench_gate.py`
/// consumes: `{"pass": bool, "slos": [...]}`, sorted input order preserved.
pub fn slo_report_json(verdicts: &[SloVerdict]) -> String {
    #[derive(Serialize)]
    struct Report {
        pass: bool,
        slos: Vec<SloVerdict>,
    }
    let report = Report {
        pass: verdicts.iter().all(|v| v.pass),
        slos: verdicts.to_vec(),
    };
    serde_json::to_string_pretty(&report).expect("SLO report serializes to JSON")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_and_allocates_nothing() {
        let mut reg = MetricsRegistry::disabled();
        reg.counter_add("a", 1);
        reg.gauge_set("b", 2);
        reg.hist_record("c", 3);
        reg.series_sample("d", SimTime::from_micros(5), 4);
        let mut h = Histogram::default();
        h.record(9);
        reg.hist_merge("e", &h);
        assert!(reg.is_empty());
        assert!(!reg.is_enabled());
        assert!(reg.snapshot("").is_empty());
    }

    #[test]
    fn series_collapse_within_cadence_window() {
        let mut reg = MetricsRegistry::enabled(SimDuration::from_micros(10));
        reg.series_sample("depth", SimTime::from_micros(1), 3);
        reg.series_sample("depth", SimTime::from_micros(9), 5); // same window
        reg.series_sample("depth", SimTime::from_micros(25), 7);
        let s = reg.series("depth").expect("series recorded");
        assert_eq!(s.points, vec![(0, 5), (2, 7)]);
        assert_eq!(s.last_value(), 7);
        assert_eq!(s.max_value(), 7);
    }

    #[test]
    fn out_of_order_samples_collapse_into_latest_window() {
        let mut reg = MetricsRegistry::enabled(SimDuration::from_micros(10));
        reg.series_sample("x", SimTime::from_micros(50), 1);
        reg.series_sample("x", SimTime::from_micros(20), 9); // late arrival
        let s = reg.series("x").expect("series recorded");
        assert_eq!(s.points, vec![(5, 9)], "tick order must stay monotone");
    }

    #[test]
    fn prefix_sanitizer_produces_snake_case() {
        assert_eq!(sanitize_prefix("E33-SSD/PIS8@0.01"), "e33_ssd_pis8_0_01");
        assert_eq!(sanitize_prefix("--x--"), "x");
        assert_eq!(sanitize_prefix(""), "");
    }

    #[test]
    fn snapshot_merge_is_order_stable_and_prefixed() {
        let mut a = MetricsRegistry::enabled(DEFAULT_CADENCE);
        a.counter_add("ios", 3);
        a.gauge_set("depth", 8);
        let mut b = MetricsRegistry::enabled(DEFAULT_CADENCE);
        b.counter_add("ios", 4);
        let mut merged = a.snapshot("cell A");
        merged.merge(&b.snapshot("cell B"));
        assert_eq!(merged.counters.get("cell_a_ios"), Some(&3));
        assert_eq!(merged.counters.get("cell_b_ios"), Some(&4));
        assert_eq!(merged.gauges.get("cell_a_depth"), Some(&8));

        // Same-name collision: counters add.
        let mut twice = a.snapshot("");
        twice.merge(&a.snapshot(""));
        assert_eq!(twice.counters.get("ios"), Some(&6));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = MetricsRegistry::enabled(DEFAULT_CADENCE);
        reg.counter_add("pool_hits_total", 10);
        reg.gauge_set("sessions_active", 2);
        reg.hist_record("io_latency_us", 100);
        reg.hist_record("io_latency_us", 200);
        reg.series_sample("queue_depth", SimTime::from_micros(1), 8);
        let text = reg.snapshot("").to_prometheus();
        assert!(text.contains("# TYPE pioqo_pool_hits_total counter\npioqo_pool_hits_total 10\n"));
        assert!(text.contains("# TYPE pioqo_sessions_active gauge\npioqo_sessions_active 2\n"));
        assert!(text.contains("# TYPE pioqo_io_latency_us histogram\n"));
        assert!(text.contains("pioqo_io_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("pioqo_io_latency_us_sum 300\n"));
        assert!(text.contains("pioqo_io_latency_us_count 2\n"));
        assert!(text.contains("# TYPE pioqo_queue_depth gauge\npioqo_queue_depth 8\n"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .expect("bucket line has a value")
                .parse()
                .expect("bucket value is an integer");
            assert!(v >= last, "cumulative bucket counts must be monotone");
            last = v;
        }
    }

    #[test]
    fn csv_and_summary_are_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::enabled(SimDuration::from_micros(2));
            reg.series_sample("a", SimTime::from_micros(0), 1);
            reg.series_sample("a", SimTime::from_micros(4), 2);
            reg.counter_add("c", 7);
            reg.hist_record("h", 5);
            reg.snapshot("cell")
        };
        let (x, y) = (build(), build());
        assert_eq!(x.series_csv(), y.series_csv());
        assert_eq!(x.summary_json(), y.summary_json());
        assert_eq!(x.to_prometheus(), y.to_prometheus());
        assert!(x.series_csv().starts_with("series,t_us,value\n"));
        assert!(x.series_csv().contains("cell_a,4,2\n"));
    }

    #[test]
    fn slo_evaluation_and_report() {
        let mut reg = MetricsRegistry::enabled(DEFAULT_CADENCE);
        reg.counter_add("hits", 90);
        reg.counter_add("lookups", 100);
        for v in [10u64, 20, 3000] {
            reg.hist_record("lat_us", v);
        }
        let snap = reg.snapshot("");
        let specs = vec![
            SloSpec {
                name: "p99_latency".into(),
                check: SloCheck::HistP99AtMost {
                    hist: "lat_us".into(),
                    limit: 5000,
                },
            },
            SloSpec {
                name: "hit_ratio".into(),
                check: SloCheck::RatioPermilleAtMost {
                    num: "hits".into(),
                    den: "lookups".into(),
                    limit: 950,
                },
            },
            SloSpec {
                name: "missing_metric".into(),
                check: SloCheck::GaugeAtMost {
                    gauge: "nope".into(),
                    limit: 1,
                },
            },
        ];
        let verdicts = evaluate_slos(&snap, &specs);
        assert!(verdicts[0].pass, "{verdicts:?}");
        assert!(verdicts[1].pass && verdicts[1].observed == 900);
        assert!(!verdicts[2].pass && !verdicts[2].found);
        let json = slo_report_json(&verdicts);
        assert!(json.contains("\"pass\": false"));
        let parsed = serde_json::from_str_content(&json).expect("SLO report parses");
        let _ = parsed;
    }
}
