//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Renders a recorded event stream in the Trace Event Format: one process
//! (`pioqo`), one thread per interned track, `B`/`E` pairs for operator
//! phase spans, async `b`/`e` pairs (matched by id) for I/O
//! submit/complete, instants for pool/retry activity and a `queue_depth`
//! counter track. Timestamps are virtual microseconds with nanosecond
//! decimals; output is built by deterministic string formatting only, so
//! identical runs export byte-identical JSON.

use crate::event::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON literal.
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append `"ts":<µs.nnn>` for a virtual timestamp.
fn push_ts(ev: &TraceEvent, out: &mut String) {
    let nanos = ev.t.as_nanos();
    let _ = write!(out, "\"ts\":{}.{:03}", nanos / 1000, nanos % 1000);
}

/// Render `tracks` and `events` (chronological order) as Chrome trace-event
/// JSON. The result loads directly in Perfetto (`ui.perfetto.dev`) or
/// `chrome://tracing`.
pub fn chrome_trace_json<'a>(
    tracks: &[String],
    events: impl Iterator<Item = &'a TraceEvent>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"pioqo\"}}",
    );
    for (i, name) in tracks.iter().enumerate() {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"args\":{{\"name\":\""
        );
        escape_json(name, &mut out);
        out.push_str("\"}}");
    }
    for ev in events {
        out.push_str(",\n{");
        let _ = write!(out, "\"name\":\"{}\",", ev.kind.name());
        match ev.kind {
            EventKind::SpanBegin(_) => {
                out.push_str("\"ph\":\"B\",");
            }
            EventKind::SpanEnd(_) => {
                out.push_str("\"ph\":\"E\",");
            }
            EventKind::IoSubmit => {
                let _ = write!(out, "\"ph\":\"b\",\"cat\":\"io\",\"id\":{},", ev.span);
            }
            EventKind::IoComplete => {
                let _ = write!(out, "\"ph\":\"e\",\"cat\":\"io\",\"id\":{},", ev.span);
            }
            EventKind::QueueDepth => {
                out.push_str("\"ph\":\"C\",");
            }
            _ => {
                out.push_str("\"ph\":\"i\",\"s\":\"t\",");
            }
        }
        let _ = write!(out, "\"pid\":1,\"tid\":{},", ev.track);
        push_ts(ev, &mut out);
        match ev.kind {
            EventKind::SpanBegin(_) | EventKind::SpanEnd(_) => {}
            EventKind::IoSubmit => {
                let _ = write!(out, ",\"args\":{{\"page\":{},\"len\":{}}}", ev.a, ev.b);
            }
            EventKind::IoComplete => {
                let _ = write!(out, ",\"args\":{{\"pages\":{},\"ok\":{}}}", ev.a, ev.b);
            }
            EventKind::PoolHit
            | EventKind::PoolMiss
            | EventKind::PoolEvict
            | EventKind::PoolRefetch
            | EventKind::PoolPrefetchHit
            | EventKind::PoolDirty
            | EventKind::PoolFlush
            | EventKind::PageFlush => {
                let _ = write!(out, ",\"args\":{{\"page\":{}}}", ev.a);
            }
            EventKind::WalFlush => {
                let _ = write!(out, ",\"args\":{{\"page\":{},\"len\":{}}}", ev.a, ev.b);
            }
            EventKind::WalDurable => {
                let _ = write!(
                    out,
                    ",\"args\":{{\"page\":{},\"durable_lsn\":{}}}",
                    ev.a, ev.b
                );
            }
            EventKind::Checkpoint => {
                let _ = write!(
                    out,
                    ",\"args\":{{\"lsn\":{},\"flushed_through\":{}}}",
                    ev.a, ev.b
                );
            }
            EventKind::CrashHalt => {
                let _ = write!(out, ",\"args\":{{\"discarded\":{}}}", ev.a);
            }
            EventKind::Retry | EventKind::TimeoutHedge => {
                let _ = write!(out, ",\"args\":{{\"io\":{},\"attempts\":{}}}", ev.a, ev.b);
            }
            EventKind::Backoff => {
                let _ = write!(out, ",\"args\":{{\"io\":{},\"wait_us\":{}}}", ev.a, ev.b);
            }
            EventKind::Probe => {
                let _ = write!(out, ",\"args\":{{\"band\":{},\"cost_ns\":{}}}", ev.a, ev.b);
            }
            EventKind::QueueDepth => {
                let _ = write!(out, ",\"args\":{{\"depth\":{}}}", ev.a);
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_simkit::SimTime;

    fn ev(kind: EventKind, track: u32, span: u64, a: u64, b: u64, micros: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_micros(micros),
            track,
            span,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let tracks = vec!["io".to_string(), "op \"x\"".to_string()];
        let events = [
            ev(EventKind::SpanBegin("scan"), 1, 0, 0, 0, 1),
            ev(EventKind::IoSubmit, 0, 7, 1234, 16, 2),
            ev(EventKind::QueueDepth, 0, 0, 3, 0, 2),
            ev(EventKind::IoComplete, 0, 7, 16, 1, 90),
            ev(EventKind::SpanEnd("scan"), 1, 0, 0, 0, 100),
        ];
        let json = chrome_trace_json(&tracks, events.iter());
        let parsed = serde_json::from_str_content(&json).expect("export must be parseable JSON");
        let top = match parsed {
            serde::Content::Map(m) => m,
            other => panic!("expected object, got {other:?}"),
        };
        let list = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key present");
        match list {
            serde::Content::Seq(items) => {
                // 1 process meta + 2 thread metas + 5 events.
                assert_eq!(items.len(), 8);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"id\":7"));
        assert!(json.contains("op \\\"x\\\""));
    }

    #[test]
    fn identical_inputs_export_identically() {
        let tracks = vec!["io".to_string()];
        let events = [
            ev(EventKind::IoSubmit, 0, 1, 5, 1, 3),
            ev(EventKind::IoComplete, 0, 1, 1, 1, 80),
        ];
        let a = chrome_trace_json(&tracks, events.iter());
        let b = chrome_trace_json(&tracks, events.iter());
        assert_eq!(a, b);
    }
}
