//! Trace event taxonomy.

use pioqo_simkit::SimTime;

/// What a [`TraceEvent`] describes.
///
/// The two generic payload words of the event (`a`, `b`) are interpreted
/// per kind — see each variant. Span-like kinds correlate through the
/// event's `span` id, which is stable across runs (it is derived from
/// simulator sequence numbers, never from addresses or wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named phase opens on the event's track (`ph: "B"`).
    SpanBegin(&'static str),
    /// The matching phase closes (`ph: "E"`).
    SpanEnd(&'static str),
    /// A physical device request was submitted (`a` = first device page,
    /// `b` = length in pages). Correlates with [`EventKind::IoComplete`]
    /// through `span` (the physical request id).
    IoSubmit,
    /// A physical device request completed (`a` = pages transferred,
    /// `b` = 1 on success, 0 on error).
    IoComplete,
    /// Buffer-pool request satisfied from memory (`a` = page).
    PoolHit,
    /// Buffer-pool request needs I/O (`a` = page).
    PoolMiss,
    /// A frame was evicted to make room (`a` = page evicted).
    PoolEvict,
    /// A miss on a page that had been resident before (`a` = page).
    PoolRefetch,
    /// A demand request hit a page a prefetch admitted (`a` = page).
    PoolPrefetchHit,
    /// A failed read was re-submitted after backoff (`a` = logical io id,
    /// `b` = attempts so far).
    Retry,
    /// A read outstanding past the policy timeout was hedged
    /// (`a` = logical io id, `b` = attempts so far).
    TimeoutHedge,
    /// A backoff wait was scheduled (`a` = logical io id, `b` = wait µs).
    Backoff,
    /// A calibration probe measured one grid point (`a` = band pages,
    /// `b` = measured cost in ns).
    Probe,
    /// Device queue-depth counter sample (`a` = outstanding requests).
    QueueDepth,
    /// A resident page transitioned clean→dirty (`a` = page).
    PoolDirty,
    /// A dirty page transitioned dirty→clean after durable writeback
    /// (`a` = page).
    PoolFlush,
    /// A WAL segment write was submitted by group commit (`a` = first WAL
    /// page, `b` = pages in the segment).
    WalFlush,
    /// A WAL segment became durable (`a` = first WAL page, `b` = the
    /// WAL's durable LSN after the contiguity rule).
    WalDurable,
    /// The background flusher submitted a data-page writeback (`a` = page).
    PageFlush,
    /// A checkpoint record was logged (`a` = its LSN, `b` = flushed-through
    /// LSN it certifies).
    Checkpoint,
    /// The device halted on an injected crash (`a` = requests discarded
    /// in flight).
    CrashHalt,
}

impl EventKind {
    /// Stable display name (used for Chrome `name` fields and summaries).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanBegin(n) | EventKind::SpanEnd(n) => n,
            EventKind::IoSubmit | EventKind::IoComplete => "io",
            EventKind::PoolHit => "pool_hit",
            EventKind::PoolMiss => "pool_miss",
            EventKind::PoolEvict => "pool_evict",
            EventKind::PoolRefetch => "pool_refetch",
            EventKind::PoolPrefetchHit => "pool_prefetch_hit",
            EventKind::Retry => "retry",
            EventKind::TimeoutHedge => "timeout_hedge",
            EventKind::Backoff => "backoff",
            EventKind::Probe => "probe",
            EventKind::QueueDepth => "queue_depth",
            EventKind::PoolDirty => "pool_dirty",
            EventKind::PoolFlush => "pool_flush",
            EventKind::WalFlush => "wal_flush",
            EventKind::WalDurable => "wal_durable",
            EventKind::PageFlush => "page_flush",
            EventKind::Checkpoint => "checkpoint",
            EventKind::CrashHalt => "crash",
        }
    }
}

/// One structured trace record, stamped with virtual time.
///
/// Events are plain `Copy` data: 8 machine words, no allocation, so a
/// disabled sink costs one predictable branch and an enabled ring sink
/// costs one array store per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub t: SimTime,
    /// Track the event belongs to (interned via [`crate::TraceSink::track`];
    /// rendered as one Perfetto thread per track).
    pub track: u32,
    /// Correlation id for span-like kinds (0 for instants).
    pub span: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (kind-specific, see [`EventKind`]).
    pub a: u64,
    /// Second payload word (kind-specific, see [`EventKind`]).
    pub b: u64,
}
