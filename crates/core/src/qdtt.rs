//! The queue-depth-aware disk transfer time (QDTT) model (§4.2, §4.5).
//!
//! `QDTT(band, qd)` is the amortized cost, in microseconds, of one random
//! page read within a band of `band` pages while the device's I/O queue
//! depth is held at `qd`. The model is a grid of calibrated knots —
//! exponentially spaced band sizes × queue depths {1, 2, 4, 8, 16, 32} —
//! with **bilinear interpolation**: linear on the band size first, then on
//! the queue depth, exactly as §4.5 prescribes.
//!
//! `QDTT(·, 1)` *is* the DTT model, which is why the paper calls QDTT a
//! generalization of DTT (§4.2): [`Qdtt::to_dtt`] extracts it.

use crate::dtt::{interp_band, interp_qd, Dtt};
use serde::{Deserialize, Serialize};

/// A calibrated QDTT model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qdtt {
    band_sizes: Vec<u64>,
    queue_depths: Vec<u32>,
    /// Row-major: `grid[qd_idx * n_bands + band_idx]`.
    grid: Vec<f64>,
}

impl Qdtt {
    /// Build from ascending band sizes, ascending queue depths, and a
    /// row-major cost grid (`queue_depths.len() × band_sizes.len()`).
    ///
    /// # Panics
    /// Panics on empty axes, unsorted/duplicate knots, a grid of the wrong
    /// size, or non-finite/negative costs.
    pub fn new(band_sizes: Vec<u64>, queue_depths: Vec<u32>, grid: Vec<f64>) -> Qdtt {
        assert!(!band_sizes.is_empty() && !queue_depths.is_empty());
        assert!(
            band_sizes.windows(2).all(|w| w[0] < w[1]),
            "band sizes must be strictly ascending"
        );
        assert!(
            queue_depths.windows(2).all(|w| w[0] < w[1]),
            "queue depths must be strictly ascending"
        );
        assert!(queue_depths[0] >= 1, "queue depth starts at 1");
        assert_eq!(grid.len(), band_sizes.len() * queue_depths.len());
        assert!(
            grid.iter().all(|c| c.is_finite() && *c >= 0.0),
            "grid costs must be finite and non-negative"
        );
        Qdtt {
            band_sizes,
            queue_depths,
            grid,
        }
    }

    /// Amortized cost (µs) of one random page read: bilinear interpolation,
    /// band axis first, then queue depth; both axes clamp outside their
    /// calibrated range.
    pub fn cost(&self, band: u64, qd: u32) -> f64 {
        let nb = self.band_sizes.len();
        // Interpolate along the band axis within each bracketing qd row.
        let row_cost = |qi: usize| {
            let row = &self.grid[qi * nb..(qi + 1) * nb];
            interp_band(&self.band_sizes, row, band)
        };
        match self.queue_depths.binary_search(&qd) {
            Ok(qi) => row_cost(qi),
            Err(0) => row_cost(0),
            Err(i) if i == self.queue_depths.len() => row_cost(self.queue_depths.len() - 1),
            Err(i) => {
                let y0 = row_cost(i - 1);
                let y1 = row_cost(i);
                interp_qd(
                    &[self.queue_depths[i - 1], self.queue_depths[i]],
                    &[y0, y1],
                    qd,
                )
            }
        }
    }

    /// The calibrated band sizes (ascending).
    pub fn band_sizes(&self) -> &[u64] {
        &self.band_sizes
    }

    /// The calibrated queue depths (ascending).
    pub fn queue_depths(&self) -> &[u32] {
        &self.queue_depths
    }

    /// The knot cost at exact grid indices (test/report helper).
    pub fn knot(&self, band_idx: usize, qd_idx: usize) -> f64 {
        self.grid[qd_idx * self.band_sizes.len() + band_idx]
    }

    /// Fix the queue depth, yielding a band-only [`Dtt`] curve.
    pub fn at_qd(&self, qd: u32) -> Dtt {
        let points = self
            .band_sizes
            .iter()
            .map(|&b| (b, self.cost(b, qd)))
            .collect();
        Dtt::new(points)
    }

    /// The DTT this model generalizes: its queue-depth-1 slice (§4.2).
    pub fn to_dtt(&self) -> Dtt {
        self.at_qd(1)
    }

    /// Nearest-knot lookup — the naive alternative to bilinear
    /// interpolation, kept for the DESIGN.md §8 interpolation ablation
    /// (Fig. 12 compares both against dense measurement).
    pub fn cost_nearest(&self, band: u64, qd: u32) -> f64 {
        let bi = nearest_idx_u64(&self.band_sizes, band);
        let qi = nearest_idx_u32(&self.queue_depths, qd);
        self.grid[qi * self.band_sizes.len() + bi]
    }

    /// The largest calibrated queue depth (what a single-query optimizer
    /// passes for a maximally parallel plan, §4.3).
    pub fn max_queue_depth(&self) -> u32 {
        *self
            .queue_depths
            .last()
            .expect("QDTT always has at least one calibrated queue depth")
    }

    /// The smallest calibrated queue depth whose cost at `band` is within
    /// `tolerance` (fractional, e.g. 0.05) of the best achievable — the
    /// "maximum beneficial queue depth" of §4.4, useful for budgeting
    /// queue depth across concurrent queries (future-work extension).
    pub fn beneficial_queue_depth(&self, band: u64, tolerance: f64) -> u32 {
        let best = self
            .queue_depths
            .iter()
            .map(|&q| self.cost(band, q))
            .fold(f64::INFINITY, f64::min);
        for &q in &self.queue_depths {
            if self.cost(band, q) <= best * (1.0 + tolerance) {
                return q;
            }
        }
        self.max_queue_depth()
    }
}

fn nearest_idx_u64(xs: &[u64], x: u64) -> usize {
    match xs.binary_search(&x) {
        Ok(i) => i,
        Err(0) => 0,
        Err(i) if i == xs.len() => xs.len() - 1,
        Err(i) => {
            if x - xs[i - 1] <= xs[i] - x {
                i - 1
            } else {
                i
            }
        }
    }
}

fn nearest_idx_u32(xs: &[u32], x: u32) -> usize {
    match xs.binary_search(&x) {
        Ok(i) => i,
        Err(0) => 0,
        Err(i) if i == xs.len() => xs.len() - 1,
        Err(i) => {
            if x - xs[i - 1] <= xs[i] - x {
                i - 1
            } else {
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plausible SSD-shaped model: cost falls with qd, rises with band.
    fn sample() -> Qdtt {
        let bands = vec![1u64, 1024, 1 << 20];
        let qds = vec![1u32, 2, 4, 8, 16, 32];
        let mut grid = Vec::new();
        for (qi, &q) in qds.iter().enumerate() {
            let _ = qi;
            for (bi, _) in bands.iter().enumerate() {
                let base = 80.0 + 20.0 * bi as f64;
                grid.push(base / (q as f64).sqrt());
            }
        }
        Qdtt::new(bands, qds, grid)
    }

    #[test]
    fn exact_on_knots() {
        let m = sample();
        assert!((m.cost(1, 1) - 80.0).abs() < 1e-9);
        assert!((m.cost(1024, 4) - 50.0).abs() < 1e-9);
        assert!((m.cost(1 << 20, 32) - 120.0 / 32f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn bilinear_between_knots() {
        let m = sample();
        // qd 3 is between rows 2 and 4; band on a knot.
        let c2 = m.cost(1024, 2);
        let c4 = m.cost(1024, 4);
        let c3 = m.cost(1024, 3);
        assert!((c3 - (c2 + c4) / 2.0).abs() < 1e-9);
        // Band between knots at a knot qd.
        let cb = m.cost(512, 8);
        let c1 = m.cost(1, 8);
        let ck = m.cost(1024, 8);
        assert!(cb >= ck.min(c1) && cb <= ck.max(c1));
    }

    #[test]
    fn clamps_on_both_axes() {
        let m = sample();
        assert_eq!(m.cost(1, 0), m.cost(1, 1));
        assert_eq!(m.cost(1, 64), m.cost(1, 32));
        assert_eq!(m.cost(1 << 30, 8), m.cost(1 << 20, 8));
    }

    #[test]
    fn qd1_slice_is_a_dtt() {
        let m = sample();
        let d = m.to_dtt();
        for &b in m.band_sizes() {
            assert!((d.cost(b) - m.cost(b, 1)).abs() < 1e-9);
        }
        // Interpolated points agree too (same linear band interpolation).
        assert!((d.cost(512) - m.cost(512, 1)).abs() < 1e-9);
    }

    #[test]
    fn deeper_queue_never_costs_more_in_sample() {
        let m = sample();
        for &b in m.band_sizes() {
            for w in m.queue_depths().windows(2) {
                assert!(m.cost(b, w[1]) <= m.cost(b, w[0]) + 1e-9);
            }
        }
    }

    #[test]
    fn beneficial_queue_depth_finds_knee() {
        let m = sample();
        // Costs fall like 1/sqrt(q): within 5% of best only at q=32.
        assert_eq!(m.beneficial_queue_depth(1024, 0.05), 32);
        // With a huge tolerance, qd 1 suffices.
        assert_eq!(m.beneficial_queue_depth(1024, 100.0), 1);
    }

    #[test]
    fn nearest_knot_exact_on_knots_and_snaps_between() {
        let m = sample();
        for (bi, &b) in m.band_sizes().to_vec().iter().enumerate() {
            for (qi, &q) in m.queue_depths().to_vec().iter().enumerate() {
                assert_eq!(m.cost_nearest(b, q), m.knot(bi, qi));
            }
        }
        // qd 3 snaps to knot 2 or 4; either way it equals a knot value.
        let v = m.cost_nearest(1024, 3);
        assert!(v == m.cost(1024, 2) || v == m.cost(1024, 4));
        // Clamping beyond the grid.
        assert_eq!(m.cost_nearest(1 << 30, 64), m.cost(1 << 20, 32));
    }

    #[test]
    fn hdd_like_flat_model() {
        // An HDD: queue depth barely matters.
        let bands = vec![1u64, 4096];
        let qds = vec![1u32, 2, 4];
        let grid = vec![40.0, 8000.0, 39.0, 7800.0, 39.0, 7700.0];
        let m = Qdtt::new(bands, qds, grid);
        assert_eq!(m.beneficial_queue_depth(4096, 0.05), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bands() {
        Qdtt::new(vec![10, 5], vec![1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_grid_size() {
        Qdtt::new(vec![1, 2], vec![1, 2], vec![1.0, 2.0, 3.0]);
    }
}
