//! Model persistence.
//!
//! A calibrated model is a durable artifact: SQL Anywhere calibrates on the
//! customer's hardware and reuses the model across restarts (§4.1). We
//! persist to JSON so models are diffable and inspectable.

use crate::dtt::Dtt;
use crate::qdtt::Qdtt;
use serde::{de::DeserializeOwned, Serialize};
use std::io;
use std::path::Path;

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed model file.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O: {e}"),
            PersistError::Format(e) => write!(f, "model file format: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(path, json)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let json = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Write a QDTT model to `path` as JSON.
pub fn save_qdtt(model: &Qdtt, path: &Path) -> Result<(), PersistError> {
    save(model, path)
}

/// Read a QDTT model from `path`.
pub fn load_qdtt(path: &Path) -> Result<Qdtt, PersistError> {
    load(path)
}

/// Write a DTT model to `path` as JSON.
pub fn save_dtt(model: &Dtt, path: &Path) -> Result<(), PersistError> {
    save(model, path)
}

/// Read a DTT model from `path`.
pub fn load_dtt(path: &Path) -> Result<Dtt, PersistError> {
    load(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pioqo-model-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn qdtt_round_trips() {
        let m = Qdtt::new(vec![1, 1024], vec![1, 32], vec![100.0, 9000.0, 10.0, 300.0]);
        let p = temp("qdtt");
        save_qdtt(&m, &p).expect("save");
        let back = load_qdtt(&p).expect("load");
        assert_eq!(m, back);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn dtt_round_trips() {
        let d = Dtt::new(vec![(1, 40.0), (64, 90.0)]);
        let p = temp("dtt");
        save_dtt(&d, &p).expect("save");
        assert_eq!(load_dtt(&p).expect("load"), d);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = load_qdtt(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(matches!(e, PersistError::Io(_)));
    }

    #[test]
    fn garbage_is_format_error() {
        let p = temp("garbage");
        std::fs::write(&p, "{ not json").expect("write");
        let e = load_qdtt(&p).unwrap_err();
        assert!(matches!(e, PersistError::Format(_)));
        assert!(format!("{e}").contains("format"));
        std::fs::remove_file(&p).ok();
    }
}
