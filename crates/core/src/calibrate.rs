//! Calibration of the DTT/QDTT models against a device (§4.4–§4.6).
//!
//! For each `(band_size, queue_depth)` grid point, the calibrator reads
//! `P = min(band, M)` pages at non-repeating uniform-random offsets within
//! each block (M = 3200 caps the per-point work), sustaining the target
//! queue depth with one of three generators:
//!
//! * **Threads(n)** — n synchronous-read loops: any completion immediately
//!   triggers the next read, so the queue depth is held constant at n;
//! * **GW(n)** — *group waiting*: issue n asynchronous reads, wait for all
//!   of them, repeat;
//! * **AW(n)** — *active waiting*: a ring of n slots; wait for the oldest
//!   read (in issue order), reissue into its slot.
//!
//! On SSD, GW ≈ AW (completions cluster, so waiting for the group costs
//! nothing extra). On HDD/RAID, per-I/O latency grows with queue depth, so
//! GW's barrier drains the queue and under-drives the device: AW < GW —
//! the paper's Figs. 9–11, and the reason AW is the method of choice for a
//! device-agnostic calibrator (§4.4).
//!
//! §4.6's early-stop: calibrate queue depth 1 fully; at each doubled depth,
//! measure the largest band first and stop if the improvement over the
//! previous depth is under `T` = 20%, defaulting the remaining points to
//! slightly above the depth-1 costs.

use crate::dtt::Dtt;
use crate::qdtt::Qdtt;
use pioqo_device::{DeviceModel, IoRequest, IoStatus};
use pioqo_simkit::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// The queue-depth generator used while measuring a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// n synchronous-read worker loops.
    Threads,
    /// Group waiting (issue n, wait all).
    GroupWait,
    /// Active waiting (ring of n, wait oldest).
    ActiveWait,
}

/// Calibration parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Band sizes to calibrate (ascending). [`CalibrationConfig::for_device`]
    /// picks an exponential ladder up to the device size.
    pub band_sizes: Vec<u64>,
    /// Queue depths to calibrate (ascending); §4.5 justifies {1,2,4,8,16,32}
    /// plus bilinear interpolation for the rest.
    pub queue_depths: Vec<u32>,
    /// Cap on page reads per calibration point (the paper's M = 3200).
    pub max_reads: u64,
    /// Queue-depth generator.
    pub method: Method,
    /// Repetitions averaged per point (the paper uses 50 for Fig. 9).
    pub repetitions: u32,
    /// §4.6 early-stop threshold in percent (`Some(20.0)` = the paper's T);
    /// `None` calibrates every point.
    pub early_stop_pct: Option<f64>,
    /// Factor applied to the depth-1 cost when filling stopped-out points
    /// ("a default value slightly larger than the measured costs for queue
    /// depth one").
    pub stop_fill_factor: f64,
    /// RNG seed for offset sequences.
    pub seed: u64,
}

impl CalibrationConfig {
    /// A paper-faithful configuration for a device of `capacity_pages`:
    /// band ladder 64, 256, ..., capacity; depths {1,2,4,8,16,32}; M = 3200;
    /// active waiting; T = 20%.
    pub fn for_device(capacity_pages: u64, seed: u64) -> CalibrationConfig {
        // Band 1 is the sequential-I/O anchor of the DTT model (§4.1);
        // the ladder then grows exponentially to the device size.
        let mut band_sizes = vec![1u64];
        let mut b = 64u64;
        while b < capacity_pages {
            band_sizes.push(b);
            b *= 4;
        }
        band_sizes.push(capacity_pages);
        CalibrationConfig {
            band_sizes,
            queue_depths: vec![1, 2, 4, 8, 16, 32],
            max_reads: 3200,
            method: Method::ActiveWait,
            repetitions: 1,
            early_stop_pct: Some(20.0),
            stop_fill_factor: 1.02,
            seed,
        }
    }
}

/// What a calibration run did, alongside the model it produced.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Grid points actually measured.
    pub points_measured: u64,
    /// Grid points filled by the §4.6 early stop.
    pub points_defaulted: u64,
    /// Total page reads issued.
    pub total_reads: u64,
    /// Total virtual time spent reading.
    pub virtual_duration: SimDuration,
    /// The queue depth at which the early stop fired (if it did).
    pub stopped_at_qd: Option<u32>,
}

/// Calibrates [`Dtt`] / [`Qdtt`] models against a [`DeviceModel`].
pub struct Calibrator {
    cfg: CalibrationConfig,
}

impl Calibrator {
    /// A calibrator with the given configuration.
    pub fn new(cfg: CalibrationConfig) -> Calibrator {
        assert!(!cfg.band_sizes.is_empty() && !cfg.queue_depths.is_empty());
        assert!(cfg.max_reads >= 1);
        Calibrator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.cfg
    }

    /// Calibrate the full QDTT grid (with early stopping if configured).
    pub fn calibrate_qdtt(&self, dev: &mut dyn DeviceModel) -> (Qdtt, CalibrationReport) {
        self.calibrate_qdtt_probed(dev, &mut |_, _, _, _| {})
    }

    /// [`Calibrator::calibrate_qdtt`] with a trace sink: every measured
    /// grid point is recorded as a [`pioqo_obs::EventKind::Probe`] event,
    /// stamped with the cumulative virtual calibration time at which the
    /// point finished (`a` = band pages, `b` = per-page cost in ns).
    pub fn calibrate_qdtt_traced(
        &self,
        dev: &mut dyn DeviceModel,
        sink: &mut dyn pioqo_obs::TraceSink,
    ) -> (Qdtt, CalibrationReport) {
        if !sink.enabled() {
            return self.calibrate_qdtt(dev);
        }
        let track = sink.track("calibrate");
        self.calibrate_qdtt_probed(dev, &mut |band, qd, cost_us, elapsed| {
            sink.record(pioqo_obs::TraceEvent {
                t: SimTime::ZERO + elapsed,
                track,
                span: qd as u64,
                kind: pioqo_obs::EventKind::Probe,
                a: band,
                b: (cost_us * 1000.0).max(0.0) as u64,
            });
        })
    }

    /// The sequential calibration loop, reporting every measured point to
    /// `probe` as `(band, qd, cost_us, cumulative_virtual_duration)`.
    fn calibrate_qdtt_probed(
        &self,
        dev: &mut dyn DeviceModel,
        probe: &mut dyn FnMut(u64, u32, f64, SimDuration),
    ) -> (Qdtt, CalibrationReport) {
        let bands = &self.cfg.band_sizes;
        let qds = &self.cfg.queue_depths;
        let nb = bands.len();
        let mut grid = vec![f64::NAN; nb * qds.len()];
        let mut report = CalibrationReport::default();
        let mut clock = PointClock::default();
        let mut rng = SimRng::seeded(self.cfg.seed);

        'qd_loop: for (qi, &qd) in qds.iter().enumerate() {
            // §4.6: largest band first within each depth.
            for bi in (0..nb).rev() {
                let band = bands[bi];
                let cost = self.measure_avg(dev, band, qd, &mut rng, &mut clock, &mut report);
                grid[qi * nb + bi] = cost;
                report.points_measured += 1;
                probe(band, qd, cost, report.virtual_duration);

                // Early-stop check after the largest band of each qd > 1.
                if bi == nb - 1 && qi > 0 {
                    if let Some(t_pct) = self.cfg.early_stop_pct {
                        let prev = grid[(qi - 1) * nb + (nb - 1)];
                        let improvement = (prev - cost) / prev * 100.0;
                        if improvement < t_pct {
                            report.stopped_at_qd = Some(qd);
                            // Fill every remaining point from the depth-1
                            // row, slightly inflated.
                            for qj in qi..qds.len() {
                                for bj in 0..nb {
                                    let fill = grid[bj] * self.cfg.stop_fill_factor;
                                    let cell = &mut grid[qj * nb + bj];
                                    if cell.is_nan() {
                                        *cell = fill;
                                        report.points_defaulted += 1;
                                    }
                                }
                            }
                            break 'qd_loop;
                        }
                    }
                }
            }
        }
        debug_assert!(grid.iter().all(|c| !c.is_nan()));
        (Qdtt::new(bands.clone(), qds.clone(), grid), report)
    }

    /// Calibrate the full QDTT grid in parallel, one fresh device per point.
    ///
    /// The parallel analogue of [`Calibrator::calibrate_qdtt`]:
    /// `make_device` builds an identical cold device for every grid point,
    /// each point draws its offsets from an rng derived purely from the
    /// config seed and the point's grid coordinates
    /// ([`SimRng::derive`]), and the per-point work fans out over
    /// [`pioqo_simkit::par::par_map`]. Rows still run in ascending
    /// queue-depth order and the largest band of each row is probed
    /// *before* the rest of the row fans out, so the §4.6 early stop
    /// measures and skips exactly the points the sequential protocol
    /// would.
    ///
    /// Because points no longer thread one rng/device/clock through the
    /// grid, the measured values differ numerically from
    /// [`Calibrator::calibrate_qdtt`] — but they are identical at every
    /// thread count, which is the invariant the harness enforces.
    pub fn calibrate_qdtt_with<D, F>(&self, make_device: F) -> (Qdtt, CalibrationReport)
    where
        D: DeviceModel,
        F: Fn() -> D + Sync,
    {
        let bands = &self.cfg.band_sizes;
        let qds = &self.cfg.queue_depths;
        let nb = bands.len();
        let mut grid = vec![f64::NAN; nb * qds.len()];
        let mut report = CalibrationReport::default();

        'qd_loop: for (qi, &qd) in qds.iter().enumerate() {
            // One derivation base per row; streams within the row are the
            // band indexes, so every grid point gets a globally unique
            // (base, stream) pair.
            let row_seed = self
                .cfg
                .seed
                .wrapping_add((qi as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));

            // §4.6 ordering: probe the largest band first.
            let probe_rng = SimRng::derive(row_seed, (nb - 1) as u64);
            let (cost, local) = self.measure_fresh(&make_device, bands[nb - 1], qd, probe_rng);
            grid[qi * nb + (nb - 1)] = cost;
            merge_report(&mut report, &local);

            if qi > 0 {
                if let Some(t_pct) = self.cfg.early_stop_pct {
                    let prev = grid[(qi - 1) * nb + (nb - 1)];
                    let improvement = (prev - cost) / prev * 100.0;
                    if improvement < t_pct {
                        report.stopped_at_qd = Some(qd);
                        for qj in qi..qds.len() {
                            for bj in 0..nb {
                                let fill = grid[bj] * self.cfg.stop_fill_factor;
                                let cell = &mut grid[qj * nb + bj];
                                if cell.is_nan() {
                                    *cell = fill;
                                    report.points_defaulted += 1;
                                }
                            }
                        }
                        break 'qd_loop;
                    }
                }
            }

            // Fan the rest of the row out across threads.
            if nb > 1 {
                let rest: Vec<(usize, u64)> = (0..nb - 1).rev().map(|bi| (bi, bands[bi])).collect();
                let results = pioqo_simkit::par::par_map(row_seed, &rest, |rng, &(_, band)| {
                    self.measure_fresh(&make_device, band, qd, rng)
                });
                for (&(bi, _), (cost, local)) in rest.iter().zip(&results) {
                    grid[qi * nb + bi] = *cost;
                    merge_report(&mut report, local);
                }
            }
        }
        debug_assert!(grid.iter().all(|c| !c.is_nan()));
        (Qdtt::new(bands.clone(), qds.clone(), grid), report)
    }

    /// Parallel analogue of [`Calibrator::calibrate_dtt`]: every band is
    /// measured on a fresh device from `make_device` with a derived rng,
    /// fanned out over [`pioqo_simkit::par::par_map`].
    pub fn calibrate_dtt_with<D, F>(&self, make_device: F) -> (Dtt, CalibrationReport)
    where
        D: DeviceModel,
        F: Fn() -> D + Sync,
    {
        let mut report = CalibrationReport::default();
        let bands: Vec<u64> = self.cfg.band_sizes.iter().rev().copied().collect();
        let results = pioqo_simkit::par::par_map(self.cfg.seed, &bands, |rng, &band| {
            self.measure_fresh(&make_device, band, 1, rng)
        });
        let points = bands
            .iter()
            .zip(&results)
            .map(|(&band, (cost, local))| {
                merge_report(&mut report, local);
                (band, *cost)
            })
            .collect();
        (Dtt::new(points), report)
    }

    /// Measure one point on a freshly built device with its own clock —
    /// the unit of work `calibrate_*_with` hands to worker threads.
    fn measure_fresh<D, F>(
        &self,
        make_device: &F,
        band: u64,
        qd: u32,
        mut rng: SimRng,
    ) -> (f64, CalibrationReport)
    where
        D: DeviceModel,
        F: Fn() -> D + Sync,
    {
        let mut dev = make_device();
        let mut clock = PointClock::default();
        let mut local = CalibrationReport::default();
        let cost = self.measure_avg(&mut dev, band, qd, &mut rng, &mut clock, &mut local);
        local.points_measured = 1;
        (cost, local)
    }

    /// Calibrate only the DTT (queue depth 1).
    pub fn calibrate_dtt(&self, dev: &mut dyn DeviceModel) -> (Dtt, CalibrationReport) {
        let mut report = CalibrationReport::default();
        let mut clock = PointClock::default();
        let mut rng = SimRng::seeded(self.cfg.seed);
        let points = self
            .cfg
            .band_sizes
            .iter()
            .rev()
            .map(|&b| {
                let c = self.measure_avg(dev, b, 1, &mut rng, &mut clock, &mut report);
                report.points_measured += 1;
                (b, c)
            })
            .collect();
        (Dtt::new(points), report)
    }

    /// Measure one `(band, qd)` point: amortized µs per page read, averaged
    /// over the configured repetitions.
    pub fn measure_point(&self, dev: &mut dyn DeviceModel, band: u64, qd: u32) -> f64 {
        let mut report = CalibrationReport::default();
        let mut clock = PointClock::default();
        let mut rng = SimRng::seeded(self.cfg.seed ^ band.rotate_left(17) ^ qd as u64);
        self.measure_avg(dev, band, qd, &mut rng, &mut clock, &mut report)
    }

    fn measure_avg(
        &self,
        dev: &mut dyn DeviceModel,
        band: u64,
        qd: u32,
        rng: &mut SimRng,
        clock: &mut PointClock,
        report: &mut CalibrationReport,
    ) -> f64 {
        let mut total = 0.0;
        for _ in 0..self.cfg.repetitions.max(1) {
            total += self.measure_once(dev, band, qd, rng, clock, report);
        }
        total / self.cfg.repetitions.max(1) as f64
    }

    /// One measurement: the paper's block-division scheme (§4.4).
    fn measure_once(
        &self,
        dev: &mut dyn DeviceModel,
        band: u64,
        qd: u32,
        rng: &mut SimRng,
        clock: &mut PointClock,
        report: &mut CalibrationReport,
    ) -> f64 {
        let file_pages = dev.capacity_pages();
        let band = band.min(file_pages);
        let m = self.cfg.max_reads;
        // Reads per block and number of blocks, total capped at M.
        let per_block = band.min(m);
        let n_blocks = if band >= m {
            1
        } else {
            (m / per_block).min(file_pages / band).max(1)
        };

        dev.reset_state();
        let mut offsets: Vec<u64> = Vec::with_capacity((per_block * n_blocks) as usize);
        if n_blocks == 1 {
            // One block of `band` pages at a random aligned start.
            let start = if file_pages > band {
                rng.below(file_pages - band + 1)
            } else {
                0
            };
            for off in rng.distinct_below(band, per_block as usize) {
                offsets.push(start + off);
            }
        } else {
            // The file is tiled into band-sized blocks; visit `n_blocks`
            // *consecutive* blocks one at a time (random placement of the
            // run). Consecutive blocks make band = 1 degenerate into pure
            // sequential I/O, which is exactly the DTT's definition of a
            // band-1 access pattern (§4.1).
            let tiles = file_pages / band;
            let first_tile = if tiles > n_blocks {
                rng.below(tiles - n_blocks + 1)
            } else {
                0
            };
            for tile in first_tile..first_tile + n_blocks {
                let start = tile * band;
                for off in rng.distinct_below(band, per_block as usize) {
                    offsets.push(start + off);
                }
            }
        }

        let elapsed = run_point_ios(dev, &offsets, qd, self.cfg.method, clock);
        report.total_reads += offsets.len() as u64;
        report.virtual_duration += elapsed;
        elapsed.as_micros_f64() / offsets.len() as f64
    }
}

/// Fold one per-point report into the aggregate (order-independent sums,
/// so the merge order cannot leak thread scheduling into the result).
fn merge_report(into: &mut CalibrationReport, from: &CalibrationReport) {
    into.points_measured += from.points_measured;
    into.points_defaulted += from.points_defaulted;
    into.total_reads += from.total_reads;
    into.virtual_duration += from.virtual_duration;
}

/// Monotonic clock shared across calibration points (device pipeline state
/// never moves backwards).
#[derive(Default)]
struct PointClock {
    now: SimTime,
}

/// Drive `offsets` page reads through `dev` at queue depth `qd` with
/// `method`; returns the elapsed virtual time.
fn run_point_ios(
    dev: &mut dyn DeviceModel,
    offsets: &[u64],
    qd: u32,
    method: Method,
    clock: &mut PointClock,
) -> SimDuration {
    let qd = qd.max(1) as usize;
    let start = clock.now;
    let mut now = start;
    let mut out = Vec::new();
    let mut next = 0usize;
    let mut completed: BTreeSet<u64> = BTreeSet::new();
    let issue = |dev: &mut dyn DeviceModel, now: SimTime, next: &mut usize| -> u64 {
        let id = *next as u64;
        dev.submit(now, IoRequest::page(id, offsets[*next]));
        *next += 1;
        id
    };

    match method {
        Method::GroupWait => {
            while next < offsets.len() {
                let group_end = (next + qd).min(offsets.len());
                while next < group_end {
                    issue(dev, now, &mut next);
                }
                // Wait for the whole group.
                while dev.outstanding() > 0 {
                    let t = dev.next_event().expect("busy device");
                    out.clear();
                    dev.advance(t, &mut out);
                    now = t;
                    debug_assert!(out.iter().all(|c| c.status == IoStatus::Ok));
                }
            }
        }
        Method::ActiveWait => {
            let mut ring: VecDeque<u64> = VecDeque::with_capacity(qd);
            while next < offsets.len().min(qd) {
                ring.push_back(issue(dev, now, &mut next));
            }
            while let Some(&oldest) = ring.front() {
                // Wait for the *oldest* read specifically.
                while !completed.contains(&oldest) {
                    let t = dev.next_event().expect("busy device");
                    out.clear();
                    dev.advance(t, &mut out);
                    now = t;
                    for c in &out {
                        debug_assert!(c.status == IoStatus::Ok);
                        completed.insert(c.req.id);
                    }
                }
                completed.remove(&oldest);
                ring.pop_front();
                if next < offsets.len() {
                    ring.push_back(issue(dev, now, &mut next));
                }
            }
        }
        Method::Threads => {
            // Any completion immediately triggers the next read.
            while next < offsets.len().min(qd) {
                issue(dev, now, &mut next);
            }
            while dev.outstanding() > 0 {
                let t = dev.next_event().expect("busy device");
                out.clear();
                let before = out.len();
                dev.advance(t, &mut out);
                now = t;
                for _ in before..out.len() {
                    if next < offsets.len() {
                        issue(dev, now, &mut next);
                    }
                }
            }
        }
    }
    // Drain stragglers (GW/Threads exit with the device idle; AW may not).
    while dev.outstanding() > 0 {
        let t = dev.next_event().expect("busy device");
        out.clear();
        dev.advance(t, &mut out);
        now = t;
    }
    clock.now = now;
    now - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200, raid_15k};

    fn small_cfg(method: Method) -> CalibrationConfig {
        CalibrationConfig {
            band_sizes: vec![64, 4096, 1 << 18],
            queue_depths: vec![1, 2, 4, 8, 16, 32],
            max_reads: 400,
            method,
            repetitions: 1,
            early_stop_pct: None,
            stop_fill_factor: 1.02,
            seed: 5,
        }
    }

    #[test]
    fn ssd_costs_fall_with_queue_depth() {
        let mut dev = consumer_pcie_ssd(1 << 18, 1);
        let cal = Calibrator::new(small_cfg(Method::ActiveWait));
        let (m, report) = cal.calibrate_qdtt(&mut dev);
        assert_eq!(report.points_measured, 18);
        assert_eq!(report.points_defaulted, 0);
        let c1 = m.cost(1 << 18, 1);
        let c32 = m.cost(1 << 18, 32);
        assert!(
            c32 < c1 / 4.0,
            "SSD qd32 should be far cheaper than qd1: {c1} vs {c32}"
        );
    }

    #[test]
    fn hdd_early_stop_fires_and_fills_defaults() {
        let mut dev = hdd_7200(1 << 18, 1);
        let mut cfg = small_cfg(Method::ActiveWait);
        cfg.early_stop_pct = Some(20.0);
        let cal = Calibrator::new(cfg);
        let (m, report) = cal.calibrate_qdtt(&mut dev);
        assert!(
            report.stopped_at_qd.is_some(),
            "single-spindle HDD should trip the early stop"
        );
        assert!(report.points_defaulted > 0);
        // Defaulted points sit slightly above the depth-1 cost.
        let c1 = m.cost(1 << 18, 1);
        let c32 = m.cost(1 << 18, 32);
        assert!(c32 >= c1 * 0.8 && c32 <= c1 * 1.3);
    }

    #[test]
    fn raid_does_not_stop_early() {
        // An 8-spindle array keeps improving >20% per depth doubling while
        // queue depth is at or below 2x the spindle count; past that the
        // array saturates and stopping is correct, so the grid tops out at
        // qd 16 here.
        let mut dev = raid_15k(8, 1 << 18, 1);
        let mut cfg = small_cfg(Method::ActiveWait);
        cfg.queue_depths = vec![1, 2, 4, 8, 16];
        cfg.early_stop_pct = Some(20.0);
        let cal = Calibrator::new(cfg);
        let (_, report) = cal.calibrate_qdtt(&mut dev);
        assert_eq!(
            report.stopped_at_qd, None,
            "8 spindles keep improving past 20% through qd 16"
        );
    }

    #[test]
    fn gw_aw_gap_small_on_ssd_large_on_raid() {
        // Figs. 10 vs 11: the AW-GW difference on SSD is a few µs
        // (negligible next to the per-point σ); on a spindle array AW is
        // *substantially* cheaper because GW's barrier drains the queue
        // while per-I/O latency grows with depth.
        let band = 1 << 16;
        let qd = 16;
        let gw = Calibrator::new(small_cfg(Method::GroupWait));
        let aw = Calibrator::new(small_cfg(Method::ActiveWait));

        let mut s1 = consumer_pcie_ssd(1 << 18, 1);
        let mut s2 = consumer_pcie_ssd(1 << 18, 1);
        let ssd_gap =
            (gw.measure_point(&mut s1, band, qd) - aw.measure_point(&mut s2, band, qd)).abs();

        let mut r1 = raid_15k(8, 1 << 18, 1);
        let mut r2 = raid_15k(8, 1 << 18, 1);
        let raid_gap =
            (gw.measure_point(&mut r1, band, qd) - aw.measure_point(&mut r2, band, qd)).abs();

        assert!(
            ssd_gap < 15.0,
            "SSD AW-GW gap should be a few µs: {ssd_gap}"
        );
        assert!(
            raid_gap > 5.0 * ssd_gap,
            "RAID gap ({raid_gap}µs) should dwarf the SSD gap ({ssd_gap}µs)"
        );
    }

    #[test]
    fn aw_cheaper_than_gw_on_raid() {
        let mut d1 = raid_15k(8, 1 << 18, 1);
        let mut d2 = raid_15k(8, 1 << 18, 1);
        let gw = Calibrator::new(small_cfg(Method::GroupWait));
        let aw = Calibrator::new(small_cfg(Method::ActiveWait));
        let band = 1 << 16;
        let cg = gw.measure_point(&mut d1, band, 16);
        let ca = aw.measure_point(&mut d2, band, 16);
        assert!(
            ca < cg * 0.95,
            "AW should beat GW on a spindle array: AW {ca} vs GW {cg}"
        );
    }

    #[test]
    fn hdd_band_size_dominates() {
        let mut dev = hdd_7200(1 << 20, 1);
        let cal = Calibrator::new(small_cfg(Method::ActiveWait));
        let (d, _) = cal.calibrate_dtt(&mut dev);
        assert!(
            d.cost(1 << 18) > d.cost(64) * 1.5,
            "seek distance must matter on HDD: {} vs {}",
            d.cost(64),
            d.cost(1 << 18)
        );
    }

    #[test]
    fn read_cap_respected() {
        let mut dev = consumer_pcie_ssd(1 << 18, 1);
        let mut cfg = small_cfg(Method::Threads);
        cfg.band_sizes = vec![1 << 18];
        cfg.queue_depths = vec![1];
        cfg.max_reads = 100;
        let cal = Calibrator::new(cfg);
        let (_, report) = cal.calibrate_qdtt(&mut dev);
        assert!(report.total_reads <= 100);
    }

    #[test]
    fn tiny_band_still_measures() {
        let mut dev = consumer_pcie_ssd(1 << 14, 1);
        let cal = Calibrator::new(CalibrationConfig {
            band_sizes: vec![1, 8],
            queue_depths: vec![1, 2],
            max_reads: 64,
            method: Method::ActiveWait,
            repetitions: 2,
            early_stop_pct: None,
            stop_fill_factor: 1.02,
            seed: 1,
        });
        let (m, report) = cal.calibrate_qdtt(&mut dev);
        assert!(report.total_reads > 0);
        assert!(m.cost(1, 1) > 0.0);
    }

    #[test]
    fn parallel_grid_matches_sequential_physics() {
        // The _with variant measures with per-point devices/rngs, so the
        // numbers differ from the sequential grid — but the device physics
        // conclusions must be the same.
        let cal = Calibrator::new(small_cfg(Method::ActiveWait));
        let (m, report) = cal.calibrate_qdtt_with(|| consumer_pcie_ssd(1 << 18, 1));
        assert_eq!(report.points_measured, 18);
        assert_eq!(report.points_defaulted, 0);
        let c1 = m.cost(1 << 18, 1);
        let c32 = m.cost(1 << 18, 32);
        assert!(c32 < c1 / 4.0, "SSD qd32 ≪ qd1: {c1} vs {c32}");
    }

    #[test]
    fn parallel_early_stop_matches_sequential_protocol() {
        let mut cfg = small_cfg(Method::ActiveWait);
        cfg.early_stop_pct = Some(20.0);
        let cal = Calibrator::new(cfg);
        let (_, par_report) = cal.calibrate_qdtt_with(|| hdd_7200(1 << 18, 1));
        let mut dev = hdd_7200(1 << 18, 1);
        let (_, seq_report) = cal.calibrate_qdtt(&mut dev);
        // Same stop depth and same measured/defaulted point counts: the
        // parallel protocol probes and skips exactly the same cells.
        assert_eq!(par_report.stopped_at_qd, seq_report.stopped_at_qd);
        assert_eq!(par_report.points_measured, seq_report.points_measured);
        assert_eq!(par_report.points_defaulted, seq_report.points_defaulted);
    }

    #[test]
    fn parallel_calibration_is_deterministic() {
        let run = || {
            let cal = Calibrator::new(small_cfg(Method::ActiveWait));
            cal.calibrate_qdtt_with(|| consumer_pcie_ssd(1 << 18, 7)).0
        };
        assert_eq!(run(), run());
        let run_dtt = || {
            let cal = Calibrator::new(small_cfg(Method::ActiveWait));
            cal.calibrate_dtt_with(|| hdd_7200(1 << 18, 7)).0
        };
        assert_eq!(run_dtt(), run_dtt());
    }

    #[test]
    fn boxed_device_factory_works() {
        // Experiment::make_device returns Box<dyn DeviceModel>; the blanket
        // impl lets the factory hand those straight to the calibrator.
        let cal = Calibrator::new(small_cfg(Method::ActiveWait));
        let make =
            || -> Box<dyn pioqo_device::DeviceModel> { Box::new(consumer_pcie_ssd(1 << 18, 3)) };
        let (m, _) = cal.calibrate_dtt_with(make);
        assert!(m.cost(64) > 0.0);
    }

    #[test]
    fn traced_calibration_emits_probes_without_perturbing_the_grid() {
        let cal = Calibrator::new(small_cfg(Method::ActiveWait));
        let mut d1 = consumer_pcie_ssd(1 << 18, 1);
        let (plain, _) = cal.calibrate_qdtt(&mut d1);
        let mut d2 = consumer_pcie_ssd(1 << 18, 1);
        let mut sink = pioqo_obs::RingSink::with_capacity(256);
        let (traced, report) = cal.calibrate_qdtt_traced(&mut d2, &mut sink);
        assert_eq!(plain, traced, "tracing must not perturb the measurement");
        assert_eq!(sink.len() as u64, report.points_measured);
        assert!(sink
            .events()
            .all(|e| matches!(e.kind, pioqo_obs::EventKind::Probe)));
        // Probes are stamped with cumulative virtual time: monotone.
        let times: Vec<_> = sink.events().map(|e| e.t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut dev = consumer_pcie_ssd(1 << 18, 7);
            let cal = Calibrator::new(small_cfg(Method::ActiveWait));
            cal.calibrate_qdtt(&mut dev).0
        };
        assert_eq!(run(), run());
    }
}
