//! # pioqo-core — the paper's contribution
//!
//! The queue-depth-aware disk transfer time model and its calibration:
//!
//! * [`Dtt`] — the classic band-size-only I/O cost model (§4.1);
//! * [`Qdtt`] — `cost(band_size, queue_depth)` with bilinear interpolation
//!   over exponentially spaced calibration knots (§4.2, §4.5); its
//!   queue-depth-1 slice *is* the DTT, making QDTT a strict generalization;
//! * [`Calibrator`] — the §4.4 calibration process (block division, the
//!   M = 3200 read cap, Threads/GW/AW queue-depth generators) with the §4.6
//!   early stop for devices that don't benefit from parallel I/O;
//! * [`persist`] — JSON round-tripping of calibrated models;
//! * [`real_calibrate`] (Unix) — the same calibration against a real file
//!   through a thread pool, for actual deployments.
//!
//! The optimizer (`pioqo-optimizer`) consumes these models to cost access
//! paths; nothing in this crate knows about tables or plans.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod dtt;
pub mod persist;
pub mod qdtt;
pub mod real_calibrate;

pub use calibrate::{CalibrationConfig, CalibrationReport, Calibrator, Method};
pub use dtt::Dtt;
pub use persist::{load_dtt, load_qdtt, save_dtt, save_qdtt, PersistError};
pub use qdtt::Qdtt;
