//! The classic disk transfer time (DTT) model (§4.1).
//!
//! `DTT(band)` is the amortized cost, in microseconds, of reading one page
//! at a uniformly random offset within a *band* of `band` consecutive pages.
//! A band of 1 is sequential I/O. The model is a piecewise-linear function
//! through calibrated `(band, cost)` knots — SQL Anywhere interpolates
//! linearly between calibration points, and so do we.

use serde::{Deserialize, Serialize};

/// A calibrated DTT model. Knots are strictly increasing in band size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dtt {
    band_sizes: Vec<u64>,
    cost_us: Vec<f64>,
}

impl Dtt {
    /// Build from `(band_size, cost_us)` knots (sorted internally).
    ///
    /// # Panics
    /// Panics on an empty knot set, duplicate band sizes, or non-finite /
    /// negative costs — a calibration that produced those is broken.
    pub fn new(mut points: Vec<(u64, f64)>) -> Dtt {
        assert!(!points.is_empty(), "DTT needs at least one knot");
        points.sort_unstable_by_key(|&(b, _)| b);
        for w in points.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate band size {}", w[0].0);
        }
        for &(b, c) in &points {
            assert!(b >= 1, "band size must be >= 1");
            assert!(c.is_finite() && c >= 0.0, "bad cost {c} at band {b}");
        }
        Dtt {
            band_sizes: points.iter().map(|&(b, _)| b).collect(),
            cost_us: points.iter().map(|&(_, c)| c).collect(),
        }
    }

    /// Amortized cost (µs) of one random page read within a band of
    /// `band` pages. Linear interpolation between knots; clamped to the
    /// first/last knot outside the calibrated range.
    pub fn cost(&self, band: u64) -> f64 {
        interp_band(&self.band_sizes, &self.cost_us, band)
    }

    /// The calibrated band sizes (ascending).
    pub fn band_sizes(&self) -> &[u64] {
        &self.band_sizes
    }

    /// The knots as `(band, cost)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.band_sizes
            .iter()
            .copied()
            .zip(self.cost_us.iter().copied())
    }
}

/// Shared linear interpolation over an ascending knot vector; clamps
/// outside the range. Also used for the QDTT's band axis.
pub(crate) fn interp_band(xs: &[u64], ys: &[f64], x: u64) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    match xs.binary_search(&x) {
        Ok(i) => ys[i],
        Err(0) => ys[0],
        Err(i) if i == xs.len() => ys[xs.len() - 1],
        Err(i) => {
            let (x0, x1) = (xs[i - 1] as f64, xs[i] as f64);
            let t = (x as f64 - x0) / (x1 - x0);
            ys[i - 1] + t * (ys[i] - ys[i - 1])
        }
    }
}

/// Linear interpolation over an ascending `u32` knot vector (queue-depth
/// axis), clamped outside the range.
pub(crate) fn interp_qd(xs: &[u32], ys: &[f64], x: u32) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    match xs.binary_search(&x) {
        Ok(i) => ys[i],
        Err(0) => ys[0],
        Err(i) if i == xs.len() => ys[xs.len() - 1],
        Err(i) => {
            let (x0, x1) = (xs[i - 1] as f64, xs[i] as f64);
            let t = (x as f64 - x0) / (x1 - x0);
            ys[i - 1] + t * (ys[i] - ys[i - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dtt {
        Dtt::new(vec![(1, 40.0), (1024, 100.0), (1 << 20, 9000.0)])
    }

    #[test]
    fn exact_on_knots() {
        let d = sample();
        assert_eq!(d.cost(1), 40.0);
        assert_eq!(d.cost(1024), 100.0);
        assert_eq!(d.cost(1 << 20), 9000.0);
    }

    #[test]
    fn linear_between_knots() {
        let d = sample();
        // Halfway between band 1 and 1024 in *band value*.
        let mid = d.cost(512);
        let expected = 40.0 + (512.0 - 1.0) / 1023.0 * 60.0;
        assert!((mid - expected).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_range() {
        let d = Dtt::new(vec![(4, 50.0), (64, 80.0)]);
        assert_eq!(d.cost(1), 50.0);
        assert_eq!(d.cost(1 << 30), 80.0);
    }

    #[test]
    fn monotone_inputs_stay_bounded() {
        let d = sample();
        for band in [1u64, 3, 17, 999, 5000, 1 << 19] {
            let c = d.cost(band);
            assert!((40.0..=9000.0).contains(&c), "band {band} -> {c}");
        }
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let d = Dtt::new(vec![(1024, 100.0), (1, 40.0)]);
        assert_eq!(d.band_sizes(), &[1, 1024]);
        assert_eq!(d.cost(1), 40.0);
    }

    #[test]
    #[should_panic(expected = "duplicate band size")]
    fn rejects_duplicates() {
        Dtt::new(vec![(8, 1.0), (8, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one knot")]
    fn rejects_empty() {
        Dtt::new(vec![]);
    }

    #[test]
    fn single_knot_is_constant() {
        let d = Dtt::new(vec![(16, 75.0)]);
        assert_eq!(d.cost(1), 75.0);
        assert_eq!(d.cost(1 << 24), 75.0);
    }
}
