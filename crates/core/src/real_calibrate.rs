//! Calibration against a real file (Unix only).
//!
//! The same block-division and waiting disciplines as the simulated
//! calibrator, but issuing actual `pread`s through a worker-thread pool and
//! measuring wall-clock time. This is the path a deployment would run on
//! the customer's hardware; on a development machine without `O_DIRECT` the
//! page cache will make the numbers flat — see `examples/real_device.rs`.

#![cfg(unix)]

use crate::calibrate::{CalibrationConfig, Method};
use crate::qdtt::Qdtt;
use pioqo_device::real::{run_calibration_ios, IoPool, RealFile, WaitMethod};
use pioqo_simkit::SimRng;
use std::io;
use std::sync::Arc;

/// Calibrate a QDTT model against a real file. The `Threads` method maps to
/// active waiting (with a pool of synchronous readers they are the same
/// discipline).
pub fn calibrate_real_qdtt(cfg: &CalibrationConfig, file: Arc<RealFile>) -> io::Result<Qdtt> {
    let nb = cfg.band_sizes.len();
    let mut grid = vec![0.0f64; nb * cfg.queue_depths.len()];
    let mut rng = SimRng::seeded(cfg.seed);
    for (qi, &qd) in cfg.queue_depths.iter().enumerate() {
        let pool = IoPool::new(Arc::clone(&file), qd as usize);
        for (bi, &band) in cfg.band_sizes.iter().enumerate() {
            let mut total_us = 0.0;
            let mut total_reads = 0u64;
            for _ in 0..cfg.repetitions.max(1) {
                let offsets = point_offsets(cfg, file.pages(), band, &mut rng);
                let method = match cfg.method {
                    Method::GroupWait => WaitMethod::GroupWait,
                    Method::ActiveWait | Method::Threads => WaitMethod::ActiveWait,
                };
                let elapsed = run_calibration_ios(&pool, method, qd as usize, &offsets)?;
                total_us += elapsed.as_secs_f64() * 1e6;
                total_reads += offsets.len() as u64;
            }
            grid[qi * nb + bi] = total_us / total_reads as f64;
        }
    }
    Ok(Qdtt::new(
        cfg.band_sizes.clone(),
        cfg.queue_depths.clone(),
        grid,
    ))
}

/// The paper's §4.4 offset schedule for one calibration point.
fn point_offsets(
    cfg: &CalibrationConfig,
    file_pages: u64,
    band: u64,
    rng: &mut SimRng,
) -> Vec<u64> {
    let band = band.min(file_pages).max(1);
    let m = cfg.max_reads;
    let per_block = band.min(m);
    let n_blocks = if band >= m {
        1
    } else {
        (m / per_block).min(file_pages / band).max(1)
    };
    let mut offsets = Vec::with_capacity((per_block * n_blocks) as usize);
    if n_blocks == 1 {
        let start = if file_pages > band {
            rng.below(file_pages - band + 1)
        } else {
            0
        };
        for off in rng.distinct_below(band, per_block as usize) {
            offsets.push(start + off);
        }
    } else {
        let tiles = file_pages / band;
        let first_tile = if tiles > n_blocks {
            rng.below(tiles - n_blocks + 1)
        } else {
            0
        };
        for tile in first_tile..first_tile + n_blocks {
            let start = tile * band;
            for off in rng.distinct_below(band, per_block as usize) {
                offsets.push(start + off);
            }
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_calibration_runs_on_temp_file() {
        let path = std::env::temp_dir().join(format!("pioqo-cal-{}.dat", std::process::id()));
        let file = Arc::new(RealFile::create(&path, 256, 4096).expect("create"));
        let cfg = CalibrationConfig {
            band_sizes: vec![16, 256],
            queue_depths: vec![1, 4],
            max_reads: 64,
            method: Method::ActiveWait,
            repetitions: 1,
            early_stop_pct: None,
            stop_fill_factor: 1.02,
            seed: 3,
        };
        let m = calibrate_real_qdtt(&cfg, file).expect("calibrates");
        assert!(m.cost(16, 1) > 0.0);
        assert!(m.cost(256, 4) > 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn offsets_respect_cap_and_band() {
        let cfg = CalibrationConfig {
            band_sizes: vec![8],
            queue_depths: vec![1],
            max_reads: 100,
            method: Method::ActiveWait,
            repetitions: 1,
            early_stop_pct: None,
            stop_fill_factor: 1.02,
            seed: 3,
        };
        let mut rng = SimRng::seeded(1);
        let offs = point_offsets(&cfg, 1024, 8, &mut rng);
        assert!(offs.len() <= 100);
        assert!(offs.iter().all(|&o| o < 1024));
    }
}
