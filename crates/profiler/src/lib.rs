//! Harness-side wall-clock self-profiler.
//!
//! Everything simulated in this workspace runs on virtual time; the only
//! legitimate consumers of the host clock are the *harness* — the `repro`
//! and `pioqo-bench` binaries and the `par_map` thread-pool driver that
//! fans grid points across cores. When the 4-thread harness runs slower
//! than the 1-thread harness (see ROADMAP), sim-time metrics cannot say
//! why: the regression lives in wall-clock land. This crate answers it.
//!
//! The profiler is a scoped phase timer, not a sampler:
//!
//! * [`scope`] opens a named phase on the current thread and a RAII guard
//!   closes it; nesting builds a stack (`main;run_grid;par_item`);
//! * each thread accumulates **self time** per stack path (child time is
//!   subtracted from the parent), so a collapsed-stack flame graph does
//!   not double-count;
//! * worker threads fold their totals into a process-wide table when they
//!   exit; [`report`] folds the calling thread and snapshots the table.
//!
//! Output formats: [`ProfileReport::collapsed`] is the classic
//! `frame;frame;frame value` text that `inferno` / speedscope /
//! `flamegraph.pl` load directly (weights are microseconds), and
//! [`ProfileReport::phase_table`] is a per-thread, per-phase breakdown
//! table for terminal reading.
//!
//! The profiler is **off by default** and costs one relaxed atomic load
//! per [`scope`] call when disabled. It is deliberately wall-clock and
//! therefore non-deterministic; nothing in the byte-determinism contract
//! may depend on it, which is why it lives in its own harness-only crate
//! (allowlisted for lint rule D1) rather than in `pioqo-obs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-wide fold target: stack path -> self nanoseconds.
static GLOBAL: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

struct ThreadState {
    label: String,
    /// Open spans: (name, accumulated child nanoseconds).
    stack: Vec<(&'static str, u64)>,
    /// Closed-span self time per full path, in nanoseconds.
    acc: BTreeMap<String, u64>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            label: String::from("main"),
            stack: Vec::new(),
            acc: BTreeMap::new(),
        }
    }

    fn fold_into_global(&mut self) {
        if self.acc.is_empty() {
            return;
        }
        let mut global = GLOBAL.lock().expect("profiler table poisoned");
        for (path, ns) in std::mem::take(&mut self.acc) {
            *global.entry(path).or_insert(0) += ns;
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // Best-effort backstop for threads that forget to flush. Scoped
        // threads may be joined *before* their TLS destructors run, so
        // workers whose totals matter must call [`flush_thread`] at the
        // end of their closure rather than rely on this.
        self.fold_into_global();
    }
}

/// Turn the profiler on. Spans opened before this call are not recorded.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the profiler off again (open spans still record on drop).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether [`scope`] is currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Name the current thread in profile output (default `main`). Workers
/// should call this once before their first [`scope`].
pub fn set_thread_label(label: &str) {
    TLS.with(|t| t.borrow_mut().label = label.to_string());
}

/// Open a phase on the current thread; the returned guard closes it.
/// Near-free when the profiler is disabled.
pub fn scope(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { start: None };
    }
    TLS.with(|t| t.borrow_mut().stack.push((name, 0)));
    Span {
        start: Some(Instant::now()),
    }
}

/// RAII guard for one open phase. Spans must nest (stack discipline),
/// which the borrow checker enforces for the normal `let _g = scope(..)`
/// pattern.
pub struct Span {
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        TLS.with(|t| {
            let mut st = t.borrow_mut();
            let Some((name, child_ns)) = st.stack.pop() else {
                return;
            };
            let self_ns = elapsed.saturating_sub(child_ns);
            let mut path = String::with_capacity(st.label.len() + 16);
            path.push_str(&st.label);
            for (frame, _) in &st.stack {
                path.push(';');
                path.push_str(frame);
            }
            path.push(';');
            path.push_str(name);
            *st.acc.entry(path).or_insert(0) += self_ns;
            if let Some(parent) = st.stack.last_mut() {
                parent.1 += elapsed;
            }
        });
    }
}

/// Fold the calling thread's totals into the process-wide table without
/// ending the thread. [`report`] calls this for its own thread; long-lived
/// threads that are not the reporter should call it when their phase of
/// interest ends.
pub fn flush_thread() {
    TLS.with(|t| t.borrow_mut().fold_into_global());
}

/// Discard all recorded data (calling thread and global table). Open
/// spans on other threads survive and will record on drop.
pub fn reset() {
    TLS.with(|t| {
        let mut st = t.borrow_mut();
        st.acc.clear();
        for frame in &mut st.stack {
            frame.1 = 0;
        }
    });
    GLOBAL.lock().expect("profiler table poisoned").clear();
}

/// A snapshot of all folded profile data.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Stack path (`thread;phase;subphase`) -> self time in microseconds.
    pub stacks: BTreeMap<String, u64>,
}

impl ProfileReport {
    /// Total recorded self time across every stack, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// Collapsed-stack text: one `path weight` line per stack, weights in
    /// microseconds. Loads directly into inferno / speedscope /
    /// `flamegraph.pl`.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, us) in &self.stacks {
            out.push_str(path);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-thread, per-phase breakdown: self time of each *top-level*
    /// phase (inclusive of its subphases), sorted heaviest-first within
    /// each thread, with a percent-of-total column.
    pub fn phase_table(&self) -> String {
        // (thread, phase) -> inclusive micros. Summing self time over all
        // paths under a phase reconstructs its inclusive time.
        let mut rows: BTreeMap<(String, String), u64> = BTreeMap::new();
        for (path, us) in &self.stacks {
            let mut parts = path.splitn(3, ';');
            let thread = parts.next().unwrap_or("?").to_string();
            let phase = parts.next().unwrap_or("?").to_string();
            *rows.entry((thread, phase)).or_insert(0) += us;
        }
        let total: u64 = rows.values().sum::<u64>().max(1);
        let mut sorted: Vec<(&(String, String), &u64)> = rows.iter().collect();
        sorted.sort_by(|a, b| {
            (&a.0 .0, std::cmp::Reverse(a.1)).cmp(&(&b.0 .0, std::cmp::Reverse(b.1)))
        });
        let mut out =
            String::from("thread         phase                          self_us      pct\n");
        for ((thread, phase), us) in sorted {
            let pct = *us as f64 * 100.0 / total as f64;
            out.push_str(&format!("{thread:<14} {phase:<30} {us:>10} {pct:>7.2}%\n"));
        }
        out.push_str(&format!("total {total} us\n"));
        out
    }
}

/// Fold the calling thread and snapshot everything recorded so far.
pub fn report() -> ProfileReport {
    flush_thread();
    let global = GLOBAL.lock().expect("profiler table poisoned");
    let stacks = global
        .iter()
        .map(|(path, ns)| (path.clone(), ns / 1_000))
        .collect();
    ProfileReport { stacks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The profiler state is process-wide; tests serialize on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        enable();
        guard
    }

    fn spin_us(us: u64) {
        let start = Instant::now();
        while start.elapsed().as_micros() < us as u128 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_scopes_split_self_time() {
        let _g = exclusive();
        {
            let _a = scope("outer");
            spin_us(2_000);
            {
                let _b = scope("inner");
                spin_us(2_000);
            }
        }
        let r = report();
        disable();
        let outer = r.stacks.get("main;outer").copied().unwrap_or(0);
        let inner = r.stacks.get("main;outer;inner").copied().unwrap_or(0);
        assert!(inner >= 1_500, "inner self time recorded: {inner}");
        assert!(
            outer < inner * 3,
            "outer self time must exclude inner: outer={outer} inner={inner}"
        );
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = exclusive();
        disable();
        {
            let _a = scope("ghost");
            spin_us(500);
        }
        assert!(report().stacks.is_empty());
    }

    #[test]
    fn worker_threads_fold_on_exit() {
        let _g = exclusive();
        std::thread::scope(|s| {
            for w in 0..2 {
                s.spawn(move || {
                    set_thread_label(&format!("w{w}"));
                    {
                        let _a = scope("work");
                        spin_us(1_000);
                    }
                    flush_thread();
                });
            }
        });
        let r = report();
        disable();
        assert!(r.stacks.contains_key("w0;work"), "stacks: {:?}", r.stacks);
        assert!(r.stacks.contains_key("w1;work"));
        let table = r.phase_table();
        assert!(table.contains("w0") && table.contains("work"));
        let collapsed = r.collapsed();
        assert!(collapsed.lines().all(|l| l.split(' ').count() == 2));
    }
}
