//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Content`] tree to JSON text and parses
//! JSON text back into it. Output is deterministic: struct fields emit in
//! declaration order, floats use Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

use serde::{Content, DeserializeOwned, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` as JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::msg)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

/// Parse JSON text into a raw [`Content`] tree.
pub fn from_str_content(s: &str) -> Result<Content, Error> {
    from_str::<Content>(s)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips.
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_content(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not reconstructed; the
                            // workspace never emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error("empty string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).expect("ser"), "42");
        assert_eq!(from_str::<u64>("42").expect("de"), 42);
        assert_eq!(from_str::<i64>("-3").expect("de"), -3);
        assert_eq!(from_str::<f64>("1.5e3").expect("de"), 1500.0);
        assert!(from_str::<bool>("true").expect("de"));
        assert_eq!(
            from_str::<String>("\"a\\nb\"").expect("de"),
            "a\nb".to_string()
        );
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let s = to_string(&v).expect("ser");
        let back: Vec<(u64, f64)> = from_str(&s).expect("de");
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        let s = to_string_pretty(&v).expect("ser");
        assert!(s.contains("\n  1"), "got {s:?}");
    }

    #[test]
    fn garbage_errors() {
        assert!(from_str::<u64>("{ not json").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
    }

    #[test]
    fn float_round_trips_exactly() {
        for v in [0.1f64, 1.0 / 3.0, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&v).expect("ser");
            let back: f64 = from_str(&s).expect("de");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
    }
}
