//! Offline stand-in for `serde`.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the small slice of serde's surface the
//! workspace actually uses: `Serialize`/`Deserialize` traits, derive macros
//! for plain structs and enums, and a self-describing [`Content`] tree that
//! `serde_json` (also vendored) renders to and parses from JSON.
//!
//! It is intentionally NOT wire-compatible with the real serde data model
//! beyond what JSON round-tripping of this workspace's types requires:
//! structs serialize as maps, newtype structs as their inner value, unit
//! enum variants as strings, and data-carrying variants as externally
//! tagged single-entry maps — matching serde's JSON conventions for the
//! shapes that appear in this repository.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

/// Error produced while rebuilding a value from a [`Content`] tree.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Convert `self` into a serialization tree.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from a serialization tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Marker mirroring serde's `DeserializeOwned` bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Mirrors `serde::de` for `use serde::de::DeserializeOwned` imports.
pub mod de {
    pub use crate::{DeError, Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Look up `name` in a map `Content` and deserialize it (derive helper).
pub fn get_field<T: Deserialize>(c: &Content, name: &str) -> Result<T, DeError> {
    match c {
        Content::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_content(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
            None => Err(DeError(format!("missing field `{name}`"))),
        },
        other => Err(DeError(format!(
            "expected map with field `{name}`, got {other:?}"
        ))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(DeError(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        DeError(format!("integer {v} out of range for i64"))
                    })?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(DeError(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            other => Err(DeError(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Deserialize::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError(format!("expected array of {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_content(it.next().ok_or_else(|| {
                                DeError("tuple too short".into())
                            })?)?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError("tuple too long".into()));
                        }
                        Ok(out)
                    }
                    other => Err(DeError(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Map keys must render as JSON object keys (strings).
pub trait MapKey: Ord + Clone {
    /// Render the key for use as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!(
                    "bad integer map key {s:?}"
                )))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some = Some(3u32).to_content();
        assert_eq!(Option::<u32>::from_content(&some).expect("some"), Some(3));
        assert_eq!(
            Option::<u32>::from_content(&Content::Null).expect("none"),
            None
        );
    }

    #[test]
    fn signed_negative_round_trip() {
        let c = (-5i64).to_content();
        assert_eq!(i64::from_content(&c).expect("i64"), -5);
    }

    #[test]
    fn map_keys_render_as_strings() {
        let mut m = BTreeMap::new();
        m.insert(7u64, 1.5f64);
        match m.to_content() {
            Content::Map(entries) => assert_eq!(entries[0].0, "7"),
            other => panic!("expected map, got {other:?}"),
        }
    }
}
