//! Offline stand-in for the `bytes` crate.
//!
//! Backs [`Bytes`] with `Arc<[u8]>` (cheap clones, like the real crate) and
//! [`BytesMut`] with `Vec<u8>`, and provides the little-endian [`Buf`] /
//! [`BufMut`] accessors this workspace's page codecs use. Semantics match
//! the real crate for in-bounds use; out-of-bounds reads panic, as upstream
//! does.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer with little-endian put methods.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read access over a shrinking byte cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        let v = u16::from_le_bytes([head[0], head[1]]);
        *self = rest;
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        *self = rest;
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let mut b = [0u8; 8];
        b.copy_from_slice(head);
        *self = rest;
        u64::from_le_bytes(b)
    }
}

/// Little-endian write access.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append `n` copies of byte `v`.
    fn put_bytes(&mut self, v: u8, n: usize);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_bytes(&mut self, v: u8, n: usize) {
        self.data.resize(self.data.len() + n, v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_bytes(&mut self, v: u8, n: usize) {
        self.resize(self.len() + n, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u64_le(u64::MAX - 1);
        b.put_bytes(0xAA, 3);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert_eq!(cur.remaining(), 3);
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn bytes_mut_is_indexable() {
        let mut b = BytesMut::new();
        b.put_u32_le(0);
        b[0] = 9;
        assert_eq!(b[0], 9);
    }
}
