//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput,
//! `Bencher::iter`) with a simple fixed-iteration wall-clock measurement
//! and plain-text output. No statistics, plots, or baselines — just
//! comparable ns/iter numbers from `cargo bench`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches written against `criterion::black_box` compile.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().label, None, 10, &mut f);
    }
}

/// Work performed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a name and a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Build an id from just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the fixed-iteration runner ignores
    /// the measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, running it enough times to produce a stable-ish figure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration, then the timed samples.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    samples: usize,
    f: &mut F,
) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label}: no measurement (closure never called iter)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            format!(" ({per_sec:.0} elem/s)")
        }
        Throughput::Bytes(n) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            format!(" ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0))
        }
    });
    println!(
        "  {label}: {ns_per_iter:.0} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declare a group-runner function that invokes each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.throughput(Throughput::Elements(4));
            g.sample_size(3);
            g.bench_function(BenchmarkId::new("f", 1), |b| {
                b.iter(|| ran += 1);
            });
            g.finish();
        }
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
    }
}
