//! Offline stand-in for `proptest`.
//!
//! Samples strategies with a fixed-seed deterministic generator instead of
//! OS entropy (every run tests the same cases — fitting for a workspace
//! whose core invariant is bit-for-bit reproducibility). No shrinking: a
//! failing case panics with the generated arguments so it can be minimized
//! by hand. Supports the strategy combinators this workspace uses: integer
//! and float ranges, tuples, `any::<T>()`, `prop::collection::vec`, and
//! `prop::sample::select`.

#![forbid(unsafe_code)]

/// Deterministic RNG and test-case error types.
pub mod test_runner {
    use std::fmt;

    /// SplitMix64-based deterministic generator for strategy sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a generator from the test's name, so every test gets a
        /// distinct but reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A failed property assertion.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }
}

/// How values are produced for a test case.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of generated values.
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;
        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as u64;
                    let hi = self.end as u64;
                    assert!(hi > lo, "empty range");
                    (lo + rng.below(hi - lo)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i64;
                    let hi = self.end as i64;
                    assert!(hi > lo, "empty range");
                    (lo + rng.below((hi - lo) as u64) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Full-range values of a type (`any::<T>()`).
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Sample an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Build the `any::<T>()` strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::sample::select(choices)`.
    pub struct Select<T> {
        pub(crate) choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.choices.is_empty(), "select from empty set");
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Accepted as a collection length: a range or an exact size.
        pub trait IntoSizeRange {
            /// Convert into a half-open length range.
            fn into_size_range(self) -> Range<usize>;
        }

        impl IntoSizeRange for Range<usize> {
            fn into_size_range(self) -> Range<usize> {
                self
            }
        }

        impl IntoSizeRange for usize {
            fn into_size_range(self) -> Range<usize> {
                self..self + 1
            }
        }

        /// Vectors whose length is drawn from `len` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into_size_range(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Pick uniformly from a fixed set of choices.
        pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
            Select { choices }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}`",
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for a number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr); ) => {};
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __args_desc = ::std::format!("{:?}", ($(&$arg,)*));
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}\n  args: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e,
                        __args_desc,
                    );
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg); $($rest)* }
    };
}
