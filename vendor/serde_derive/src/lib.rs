//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item's token stream by hand (the offline environment has no
//! `syn`/`quote`): enough to handle non-generic named structs, tuple
//! structs, and enums whose variants are unit, tuple, or struct shaped —
//! which covers every `#[derive(Serialize, Deserialize)]` in this
//! workspace. Generic items are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// `struct Name { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T, U);` — arity recorded, fields are positional.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { Unit, Tuple(T), Struct { a: T } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .unwrap_or_default()
}

/// Skip `#[...]` attributes (including doc comments) and `pub`/`pub(...)`
/// visibility starting at `i`; returns the new index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split the tokens of a brace/paren group on commas at angle-bracket
/// depth zero. Nested groups are single tokens, so only `<`/`>` puncts
/// need depth tracking (e.g. `BTreeMap<u64, u32>`).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract the field name from one named-field declaration.
fn field_name(decl: &[TokenTree]) -> Option<String> {
    let i = skip_attrs_and_vis(decl, 0);
    match decl.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("cannot derive for `{kind}` items"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generic item `{name}`"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            // Tuple struct.
            let parts: Vec<TokenTree> = g.stream().into_iter().collect();
            let arity = split_top_level_commas(&parts).len();
            return Ok(Item::TupleStruct { name, arity });
        }
        other => return Err(format!("expected item body for `{name}`, got {other:?}")),
    };

    let body_tokens: Vec<TokenTree> = body.into_iter().collect();
    if kind == "struct" {
        let mut fields = Vec::new();
        for decl in split_top_level_commas(&body_tokens) {
            if let Some(f) = field_name(&decl) {
                fields.push(f);
            }
        }
        Ok(Item::NamedStruct { name, fields })
    } else {
        let mut variants = Vec::new();
        for decl in split_top_level_commas(&body_tokens) {
            let j = skip_attrs_and_vis(&decl, 0);
            let vname = match decl.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => continue,
                other => return Err(format!("expected variant name, got {other:?}")),
            };
            let shape = match decl.get(j + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    let mut fields = Vec::new();
                    for fdecl in split_top_level_commas(&toks) {
                        if let Some(f) = field_name(&fdecl) {
                            fields.push(f);
                        }
                    }
                    VariantShape::Struct(fields)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Tuple(split_top_level_commas(&toks).len())
                }
                _ => VariantShape::Unit,
            };
            variants.push(Variant { name: vname, shape });
        }
        Ok(Item::Enum { name, variants })
    }
}

/// `#[derive(Serialize)]`: emit an `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ {expr} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_content(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), {inner})]),",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Content::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n{}\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    };
    body.parse().unwrap_or_else(|_| {
        compile_error("vendored serde derive produced unparseable Serialize impl")
    })
}

/// `#[derive(Deserialize)]`: emit an `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(c, {f:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                format!("{name}(::serde::Deserialize::from_content(c)?)")
            } else {
                format!(
                    "{{ let __t: ({}) = ::serde::Deserialize::from_content(c)?; \
                     {name}({}) }}",
                    vec!["_"; *arity]
                        .iter()
                        .enumerate()
                        .map(|(k, _)| format!("__T{k}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    (0..*arity)
                        .map(|k| format!("__t.{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            // Multi-field tuple structs would need field types, which this
            // parser does not record; only newtypes occur in-tree.
            if *arity != 1 {
                return compile_error(&format!(
                    "vendored serde derive supports tuple structs of arity 1 only \
                     (`{name}` has {arity} fields)"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({expr})\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(arity) => {
                            if *arity != 1 {
                                return Some(format!(
                                    "{vn:?} => ::std::result::Result::Err(\
                                     ::serde::DeError(::std::string::String::from(\
                                     \"multi-field tuple variants unsupported\"))),"
                                ));
                            }
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_content(__v)?)),"
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::get_field(__v, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"expected {name} variant, got {{__other:?}}\"))),\n\
                 }}\n}}\n}}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    body.parse().unwrap_or_else(|_| {
        compile_error("vendored serde derive produced unparseable Deserialize impl")
    })
}
