//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface this workspace uses: MPMC
//! channels with clonable senders *and* receivers, built on
//! `std::sync::{Mutex, Condvar}`. Capacity bounds are accepted but not
//! enforced (the workspace only uses `bounded(1)` for single reply slots,
//! where an unbounded queue is behaviorally identical).

#![forbid(unsafe_code)]

/// MPMC channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (messages are work-stolen, not broadcast).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is closed: every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    fn new_channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel()
    }

    /// A bounded MPMC channel. The bound is accepted for API compatibility
    /// but not enforced; see the module docs.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel()
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.senders += 1;
            drop(inner);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.shared.ready.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.receivers += 1;
            drop(inner);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_in_order_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        for i in 0..10 {
            assert_eq!(rx.recv().expect("sender alive"), i);
        }
    }

    #[test]
    fn recv_unblocks_when_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().expect("no panic"), Err(RecvError));
    }

    #[test]
    fn cloned_receivers_steal_work() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let h1 = std::thread::spawn(move || rx.recv().expect("one each"));
        let h2 = std::thread::spawn(move || rx2.recv().expect("one each"));
        tx.send(1).expect("alive");
        tx.send(2).expect("alive");
        let mut got = vec![h1.join().expect("ok"), h2.join().expect("ok")];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
