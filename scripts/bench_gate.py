#!/usr/bin/env python3
"""CI bench-regression gate.

Compares the freshly generated benchmark report (``BENCH_pr10.json`` by
default) against the latest *previously committed* ``BENCH_*.json`` and
fails when any shared throughput-style metric regressed by more than the
allowed fraction (default 10%).

Rules:

- Only metrics present in BOTH reports are compared (sections and scalar
  keys may come and go across PRs); every skipped metric is printed so a
  shrinking comparison surface is visible in the CI log.
- "Bigger is better" metrics (``*_per_sec``, ``queries_per_wall_s``)
  fail when ``new < old * (1 - tolerance)``.
- "Smaller is better" metrics (``*_wall_s``, ``wall_s_per_run``,
  ``overhead_ratio``) fail when ``new > old * (1 + tolerance)``.
- Counters (``events``, ``accesses``, ``runs``, ...) are informational
  only: a changed workload size is a bench change, not a regression.
- ``speedup`` leaves are informational too: each one is a ratio of two
  metrics that are gated individually, and gating the ratio would fail
  a report where the *denominator* improved (e.g. the reference
  backend getting faster) with no regression anywhere.
- ``threads_1v4_speedup`` leaves (the end-to-end 1-thread vs 4-thread
  wall ratio) are **fatal** below 1.0 when the recording host had at
  least 4 logical CPUs (``host_logical_cpus``, read from the leaf's own
  section first, then the report top level): on a real 4-way host the
  parallel harness losing to the serial one is a scheduling regression.
  On smaller runners (or when the CPU count is missing) the same drop is
  a **non-fatal WARN** — there it is noise, not a gate failure.
- Hard invariant, checked regardless of the baseline: the event queue's
  batch drain must not be slower than repeated single pops
  (``event_queue.pop_batch_events_per_sec >= event_queue.pop_events_per_sec``).
- Hard invariant on the ``sessions`` section (when present): the
  cooperative shared-scan cursor must beat per-query cursors at 1K
  sessions — ``sessions.shared_speedup_1k`` below 1.0 is fatal, and
  below 10.0 (the PR's target) is a WARN.
- Hard invariants on the ``metrics`` section (when present): the
  always-on registry must stay cheap —
  ``metrics.disabled_overhead_ratio`` and
  ``metrics.enabled_overhead_ratio`` above 1.02 (2% overhead; both are
  median-of-paired-ratio estimates, see ``bench_metrics``) are fatal —
  and the SLO roster evaluated during capture must hold
  (``metrics.slo_pass`` false is fatal).
- Hard invariant on the ``query_layer`` section (when present): every
  throughput leaf (``filtered_scan_rows_per_sec``,
  ``hash_join_rows_per_sec``, ``inl_join_rows_per_sec``) must be a
  positive finite number — a null/zero means the query path failed to
  execute inside the bench, which no baseline comparison would catch.
  Against a baseline that carries the section, the same leaves are gated
  as ordinary ``_per_sec`` throughput metrics.

Usage: scripts/bench_gate.py [NEW_REPORT] [--tolerance 0.10]
Exit status: 0 pass, 1 regression, 2 usage/missing-file errors.
"""

import json
import re
import sys
from pathlib import Path

TOLERANCE = 0.10

HIGHER_IS_BETTER = re.compile(r"(_per_sec|_per_wall_s)$")
LOWER_IS_BETTER = re.compile(r"(_wall_s|wall_s_per_run|overhead_ratio)$")


def flatten(report, prefix=""):
    """Yield (dotted_path, value) for every scalar leaf."""
    for key, value in report.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from flatten(value, f"{path}.")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield path, float(value)


def latest_baseline(repo_root, new_path):
    """The highest-numbered committed BENCH_pr<N>.json other than the new one."""
    candidates = []
    for p in repo_root.glob("BENCH_pr*.json"):
        if p.resolve() == new_path.resolve():
            continue
        m = re.match(r"BENCH_pr(\d+)\.json$", p.name)
        if m:
            candidates.append((int(m.group(1)), p))
    if not candidates:
        return None
    return max(candidates)[1]


def main(argv):
    tolerance = TOLERANCE
    args = []
    it = iter(argv)
    for a in it:
        if a == "--tolerance":
            tolerance = float(next(it, "nan"))
        else:
            args.append(a)
    if tolerance != tolerance:  # NaN: --tolerance without a value
        print("bench_gate: --tolerance needs a value", file=sys.stderr)
        return 2

    repo_root = Path(__file__).resolve().parent.parent
    new_path = Path(args[0]) if args else repo_root / "BENCH_pr10.json"
    if not new_path.is_file():
        print(f"bench_gate: new report {new_path} not found", file=sys.stderr)
        return 2
    new = json.loads(new_path.read_text())

    failures = []

    # Hard invariant: the batched drain exists to be faster than pop().
    eq = new.get("event_queue", {})
    pop = eq.get("pop_events_per_sec")
    pop_batch = eq.get("pop_batch_events_per_sec")
    if pop is None or pop_batch is None:
        failures.append("event_queue pop/pop_batch throughput missing from new report")
    elif pop_batch < pop:
        failures.append(
            f"pop_batch ({pop_batch:.0f} ev/s) slower than pop ({pop:.0f} ev/s): "
            "batch drain must not lose to repeated single pops"
        )
    else:
        print(f"ok   event_queue: pop_batch {pop_batch:.0f} >= pop {pop:.0f} ev/s")

    # A 1-vs-4-thread end-to-end speedup below 1.0 means the parallel
    # harness lost to the serial one. Fatal when the recording host
    # actually had >= 4 logical CPUs; a WARN on smaller runners, where
    # the measurement is noise by construction.
    top_cpus = new.get("host_logical_cpus")
    for path, value in flatten(new):
        if path.rsplit(".", 1)[-1] == "threads_1v4_speedup":
            section = new.get(path.split(".", 1)[0], {}) if "." in path else {}
            cpus = section.get("host_logical_cpus", top_cpus) or 0
            if value < 1.0 and cpus >= 4:
                failures.append(
                    f"{path}: {value:g} < 1.0 with {cpus} logical CPUs "
                    "(4 threads slower than 1 on a >=4-way host)"
                )
            elif value < 1.0:
                print(f"WARN {path}: {value:g} < 1.0 (host has {cpus} CPUs; not gated)")
            else:
                print(f"ok   {path}: {value:g} >= 1.0")

    # Shared scans must earn their keep: one circular cursor feeding all
    # 1K sessions has to beat 1K independent cursors on wall-clock.
    sessions = new.get("sessions") or {}
    speedup_1k = sessions.get("shared_speedup_1k")
    if speedup_1k is not None:
        if speedup_1k < 1.0:
            failures.append(
                f"sessions.shared_speedup_1k: {speedup_1k:g} < 1.0 "
                "(shared cursor slower than per-query cursors)"
            )
        elif speedup_1k < 10.0:
            print(f"WARN sessions.shared_speedup_1k: {speedup_1k:g} < 10.0 target")
        else:
            print(f"ok   sessions.shared_speedup_1k: {speedup_1k:g} >= 10.0")

    # The always-on metrics registry must stay ~free: an ordinary run
    # carries a disabled registry (disabled_overhead_ratio), and turning
    # it on may not cost more than 2% either (enabled_overhead_ratio).
    # The SLO roster evaluated during the capture must also hold.
    metrics = new.get("metrics") or {}
    for leaf in ("disabled_overhead_ratio", "enabled_overhead_ratio"):
        ratio = metrics.get(leaf)
        if ratio is None:
            continue
        if ratio > 1.02:
            failures.append(
                f"metrics.{leaf}: {ratio:g} > 1.02 "
                "(metrics registry overhead above the 2% budget)"
            )
        else:
            print(f"ok   metrics.{leaf}: {ratio:g} <= 1.02")
    if "slo_pass" in metrics:
        if metrics["slo_pass"] is not True:
            failures.append(
                f"metrics.slo_pass: {metrics['slo_pass']} (SLO roster failed during capture)"
            )
        else:
            print("ok   metrics.slo_pass: true")

    # The query layer must have actually executed: null or non-positive
    # throughput is a failed bench, not a regression a baseline can catch.
    query_layer = new.get("query_layer")
    if query_layer is not None:
        for leaf in (
            "filtered_scan_rows_per_sec",
            "hash_join_rows_per_sec",
            "inl_join_rows_per_sec",
        ):
            value = query_layer.get(leaf)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
                failures.append(
                    f"query_layer.{leaf}: {value!r} (query path failed to execute in bench)"
                )
            else:
                print(f"ok   query_layer.{leaf}: {value:g} > 0")

    baseline_path = latest_baseline(repo_root, new_path)
    if baseline_path is None:
        print("bench_gate: no committed baseline BENCH_pr*.json; invariants only")
    else:
        print(f"baseline: {baseline_path.name}  new: {new_path.name}  tolerance: {tolerance:.0%}")
        old_metrics = dict(flatten(json.loads(baseline_path.read_text())))
        new_metrics = dict(flatten(new))
        shared = sorted(set(old_metrics) & set(new_metrics))
        for path in sorted(set(old_metrics) ^ set(new_metrics)):
            side = "baseline" if path in old_metrics else "new"
            print(f"skip {path}: only in {side} report")
        for path in shared:
            old_v, new_v = old_metrics[path], new_metrics[path]
            leaf = path.rsplit(".", 1)[-1]
            if HIGHER_IS_BETTER.search(leaf):
                bad = old_v > 0 and new_v < old_v * (1.0 - tolerance)
                direction = ">="
            elif LOWER_IS_BETTER.search(leaf):
                bad = old_v > 0 and new_v > old_v * (1.0 + tolerance)
                direction = "<="
            elif leaf in ("speedup", "threads_1v4_speedup"):
                print(f"info {path}: {old_v:g} -> {new_v:g} (derived ratio, not gated)")
                continue
            else:
                print(f"info {path}: {old_v:g} -> {new_v:g} (counter, not gated)")
                continue
            delta = (new_v - old_v) / old_v * 100.0 if old_v else 0.0
            line = f"{path}: {old_v:g} -> {new_v:g} ({delta:+.1f}%, want {direction} baseline)"
            if bad:
                failures.append(line)
            else:
                print(f"ok   {line}")

    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    print("bench_gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
