//! The paper's future work, §4.3: budgeting queue depth across concurrent
//! queries. Each admitted query leases a share of the device's beneficial
//! queue depth and is optimized against that share; the example shows how
//! plan choice degrades gracefully from PIS32 toward serial plans as
//! concurrency rises.
//!
//! ```sh
//! cargo run --release --example concurrent_budget
//! ```

use pioqo::prelude::*;
use pioqo::workload::{calibrate, cold_stats};

fn main() {
    let cfg = ExperimentConfig::by_name("E33-SSD")
        .expect("known experiment")
        .scaled_down(16);
    let exp = Experiment::build(cfg);
    let models = calibrate(&exp);
    let stats = cold_stats(&exp);

    let budget = QdBudget::from_model(&models.qdtt);
    println!(
        "device's maximum beneficial queue depth: {}\n",
        budget.share_at(1)
    );

    let sel = 0.01;
    println!(
        "plan chosen for query Q (sel {:.1}%) vs concurrency level:",
        sel * 100.0
    );
    for k in [1u32, 2, 4, 8, 16, 32] {
        let share = budget.share_at(k);
        let model = QdttCost(models.qdtt.clone());
        let opt = Optimizer::new(
            &model,
            OptimizerConfig {
                max_queue_depth: share,
                degrees: vec![1, share.max(1)],
                ..OptimizerConfig::default()
            },
        );
        let plan = opt.choose(&stats, sel);
        println!(
            "  {k:>2} concurrent queries -> qd share {share:>2} -> {} degree {:>2}  (est {:.1} ms)",
            plan.method,
            plan.degree,
            plan.est_total_us / 1000.0
        );
    }
    println!(
        "\nwith the device saturated by other queries, grabbing 32 workers no\n\
         longer pays — the budget hands the optimizer an honest queue depth."
    );
}
