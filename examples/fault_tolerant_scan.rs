//! Fault-tolerant scan: a parallel full table scan over a RAID array with
//! one failed spindle, behind a fault injector that adds transient read
//! errors and stretched tail latencies — and a retry policy that absorbs
//! all of it. The scan still returns the exact answer; the resilience
//! counters show what it cost.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_scan
//! ```

use pioqo::bufpool::BufferPool;
use pioqo::prelude::*;
use pioqo::storage::range_for_selectivity;

fn scan(
    device: &mut dyn DeviceModel,
    table: &HeapTable,
    retry: RetryPolicy,
) -> Result<ScanMetrics, ExecError> {
    let mut pool = BufferPool::new(2048);
    let (lo, hi) = range_for_selectivity(0.1, u32::MAX - 1);
    let mut ctx = SimContext::new(
        device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    let q = QuerySpec::range_max(table, None, lo, hi).with_plan(PlanSpec::Fts(FtsConfig {
        workers: 8,
        retry,
        ..FtsConfig::default()
    }));
    execute(&mut ctx, &q)
}

fn main() {
    let seed = 42;
    let spec = TableSpec::paper_table(33, 200_000, 7);
    let mut ts = Tablespace::new(2 * spec.n_pages() + 1000);
    let table = HeapTable::create(spec, &mut ts).expect("fits");
    println!(
        "dataset: {} rows on {} pages, striped over an 8-spindle 15K RAID",
        200_000,
        table.n_pages()
    );

    // Baseline: a healthy array, no fault injection.
    let mut healthy = presets::raid_15k(8, ts.capacity(), seed);
    let base = scan(&mut healthy, &table, RetryPolicy::default()).expect("healthy scan");
    println!(
        "\nhealthy array:  {:>8.4}s  (MAX = {:?})",
        base.runtime.as_secs_f64(),
        base.max_c1
    );

    // Chaos: spindle 2 fails outright (every read of its pages must be
    // reconstructed from the 7 survivors), the controller develops
    // transient read errors that heal after 2 attempts, and 10% of
    // completions take 6x their modeled latency.
    let mut array = presets::raid_15k(8, ts.capacity(), seed);
    array.set_degraded(Some(2));
    let mut dev = Faulty::new(
        array,
        FaultPlan::Transient {
            p: 0.05,
            attempts: 2,
            seed,
        },
    )
    .with_tail_latency(0.1, 6.0, seed ^ 1);

    let retry = RetryPolicy {
        max_attempts: 4,
        backoff: SimDuration::from_micros_f64(200.0),
        timeout: Some(SimDuration::from_micros_f64(30_000.0)),
    };
    let m = scan(&mut dev, &table, retry).expect("retry policy absorbs the chaos");

    assert_eq!(m.max_c1, base.max_c1, "faults must never change the answer");
    assert_eq!(m.rows_matched, base.rows_matched);
    println!(
        "degraded+chaos: {:>8.4}s  (MAX = {:?}, same answer)",
        m.runtime.as_secs_f64(),
        m.max_c1
    );
    println!(
        "  slowdown        {:.2}x",
        m.runtime.as_secs_f64() / base.runtime.as_secs_f64()
    );
    println!("  retries         {}", m.resilience.retries);
    println!("  timeouts        {}", m.resilience.timeouts);
    println!("  degraded reads  {}", m.resilience.degraded_reads);
    println!("  faults injected {}", dev.injected());
    println!("  completions delayed {}", dev.delayed());
    println!(
        "  spindle-2 reconstructions {}",
        dev.inner().degraded_reads()
    );
}
