//! Crash and recover: a write workload dirties pages, logs to the WAL with
//! group commit, and flushes checkpoints in the background — then the
//! device crashes mid-workload, tearing whatever was in flight. Recovery
//! scans the durable WAL prefix, replays it from origin, detects torn
//! pages by checksum, and proves the database byte-identical to the
//! durable-prefix oracle.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use pioqo::bufpool::BufferPool;
use pioqo::prelude::*;
use pioqo::storage::decode_heap_page;

fn main() {
    let seed = 42u64;
    let spec = TableSpec::paper_table(33, 5_000, seed);
    let mut ts = Tablespace::new(spec.n_pages() + 600);
    let table = HeapTable::create(spec, &mut ts).expect("fits");
    let wal_extent = ts.alloc("wal", 512).expect("fits");
    println!(
        "write table: {} rows on {} pages; WAL extent: {} pages",
        5_000,
        table.n_pages(),
        wal_extent.pages
    );

    // The database files exist on media before the workload starts; the
    // array keeps a mirror, so damage outside the WAL's reach is still
    // reconstructable.
    let mut media = MediaStore::new(table.spec().page_size).with_redundancy();
    for local in 0..table.n_pages() {
        media.write(table.device_page(local), &table.page_image(local));
    }

    let cfg = WriteConfig {
        writers: 4,
        commits_per_writer: 10,
        think: SimDuration::from_micros_f64(300.0),
        group_commit: SimDuration::from_micros_f64(150.0),
        flush_interval: SimDuration::from_micros_f64(500.0),
        seed,
        ..WriteConfig::default()
    };

    // Crash mid-workload, with every in-flight write torn or lost.
    let crash_at = SimTime::from_micros(5_000);
    let inner = presets::consumer_pcie_ssd(ts.capacity(), seed);
    let mut dev = Crashable::new(inner, CrashPlan::at(crash_at, seed ^ 0xC1));
    let mut pool = BufferPool::new(256);
    let mut ws = {
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let mut ws = WriteSystem::new(cfg, &table, wal_extent, media);
        match drive_writes(&mut ctx, &mut ws) {
            Err(ExecError::Crashed) => println!("\ndevice crashed at {crash_at}"),
            other => panic!("expected a crash, got {other:?}"),
        }
        ws
    };
    let stats = ws.stats();
    println!(
        "pre-crash:  {} commits acked, {} WAL records in {} segments, {} data-page flushes",
        stats.commits_acked, stats.wal_records, stats.wal_segments, stats.data_page_flushes
    );
    let report = dev.crash_report().expect("crashed device has a report");
    println!(
        "in flight:  {} torn writes, {} lost writes, {} aborted reads",
        report.torn_writes.len(),
        report.lost_writes.len(),
        report.aborted_reads.len()
    );
    ws.apply_crash(report, seed ^ 0xC1);
    let acked = ws.acked_lsns().to_vec();
    let touched = ws.touched_pages();
    let mut media = ws.into_media();

    // Silent at-rest corruption on top of the crash: a page the WAL never
    // touched goes bad. Replay cannot repair it — only the mirror can.
    let victim = (0..table.n_pages())
        .map(|l| table.device_page(l))
        .find(|dp| !touched.contains(dp))
        .expect("some page stays untouched");
    media.corrupt(victim, seed ^ 0xA7);
    println!("at rest:    page {victim} silently corrupted");

    // Recover: scan the durable WAL prefix, replay from origin, verify.
    let rec = recover(&mut media, wal_extent, table.spec(), table.extent());
    println!("\nrecovery:");
    println!(
        "  durable WAL prefix ..... {} records, last LSN {}",
        rec.wal_records, rec.durable_lsn
    );
    println!("  torn pages detected .... {}", rec.torn_pages_detected);
    println!("  pages replayed ......... {}", rec.pages_replayed);
    println!("  records replayed ....... {}", rec.records_replayed);
    println!("  reconstructed .......... {}", rec.reconstructed_pages);
    println!("  unrecoverable .......... {:?}", rec.unrecoverable_pages);
    println!("  pages verified ......... {}", rec.pages_verified);

    // The durability contract: every acked commit is inside the durable
    // prefix, and every recovered page decodes cleanly.
    assert!(acked.iter().all(|&lsn| lsn <= rec.durable_lsn));
    assert!(rec.fully_recovered(), "crash-torn pages are WAL-covered");
    for local in 0..table.n_pages() {
        let dp = table.device_page(local);
        let image = media.read(dp).expect("page present");
        decode_heap_page(table.spec(), image).expect("page decodes after recovery");
    }
    println!(
        "\nall {} acked commits durable; every table page checksums clean",
        acked.len()
    );
}
