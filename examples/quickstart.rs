//! Quickstart: build a table on a simulated SSD, calibrate the QDTT model,
//! let the old (DTT) and new (QDTT) optimizers pick plans, and execute both.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pioqo::prelude::*;
use pioqo::workload::{calibrate, cold_stats, plan_to_method};

fn main() {
    // 1. A T33-style table (500K rows, 33 rows/page) on the paper's
    //    consumer PCIe SSD, with the paper's small 64 MB buffer pool.
    let cfg = ExperimentConfig::by_name("E33-SSD")
        .expect("known experiment")
        .scaled_down(16);
    println!("dataset: {} rows, {} pages", cfg.rows, cfg.rows / 33);
    let exp = Experiment::build(cfg);

    // 2. Calibrate the device: this produces the QDTT model — amortized
    //    cost of one page read as a function of (band size, queue depth).
    let models = calibrate(&exp);
    println!("\ncalibrated QDTT (µs/page) at the widest band:");
    let widest = *models.qdtt.band_sizes().last().unwrap();
    for &qd in models.qdtt.queue_depths() {
        println!("  qd {qd:>2}: {:8.2}", models.qdtt.cost(widest, qd));
    }

    // 3. Build both optimizers. The ONLY difference is the I/O model.
    let old_model = DttCost(models.dtt.clone());
    let new_model = QdttCost(models.qdtt.clone());
    let old = Optimizer::new(&old_model, OptimizerConfig::default());
    let new = Optimizer::new(&new_model, OptimizerConfig::default());
    let stats = cold_stats(&exp);

    // 4. Plan and execute the paper's query at 1% selectivity:
    //    SELECT MAX(C1) FROM T33 WHERE C2 BETWEEN lo AND hi
    let sel = 0.01;
    let old_plan = old.choose(&stats, sel);
    let new_plan = new.choose(&stats, sel);
    println!(
        "\nquery: SELECT MAX(C1) FROM T33 WHERE C2 BETWEEN ... ({:.1}% of rows)",
        sel * 100.0
    );
    println!(
        "old (DTT)  optimizer picks {} degree {}",
        old_plan.method, old_plan.degree
    );
    println!(
        "new (QDTT) optimizer picks {} degree {}",
        new_plan.method, new_plan.degree
    );

    let old_run = exp
        .run_cold(plan_to_method(&old_plan, 0), sel)
        .expect("old plan executes");
    let new_run = exp
        .run_cold(plan_to_method(&new_plan, 0), sel)
        .expect("new plan executes");
    assert_eq!(old_run.max_c1, new_run.max_c1, "same answer either way");
    println!(
        "\nexecution: old {:.4}s  new {:.4}s  -> {:.1}x speedup (MAX = {:?})",
        old_run.runtime.as_secs_f64(),
        new_run.runtime.as_secs_f64(),
        old_run.runtime.as_secs_f64() / new_run.runtime.as_secs_f64(),
        new_run.max_c1,
    );
    println!(
        "observed queue depth: old {:.1}, new {:.1} — the whole point of the paper",
        old_run.io.mean_queue_depth, new_run.io.mean_queue_depth
    );
}
