//! Calibrate DTT/QDTT models on all three device classes, show the §4.6
//! early-stop at work, and persist the models to JSON.
//!
//! ```sh
//! cargo run --release --example calibrate_devices
//! ```

use pioqo::core::{save_qdtt, CalibrationConfig, Calibrator};
use pioqo::prelude::*;

fn main() {
    let cap = 1u64 << 19; // 2 GiB device
    let out_dir = std::env::temp_dir().join("pioqo-models");
    std::fs::create_dir_all(&out_dir).expect("create model dir");

    type MakeDev = Box<dyn Fn() -> Box<dyn DeviceModel>>;
    let devices: Vec<(&str, MakeDev)> = vec![
        (
            "hdd-7200",
            Box::new(move || Box::new(presets::hdd_7200(cap, 1))),
        ),
        (
            "ssd-pcie",
            Box::new(move || Box::new(presets::consumer_pcie_ssd(cap, 1))),
        ),
        (
            "raid-15k-x8",
            Box::new(move || Box::new(presets::raid_15k(8, cap, 1))),
        ),
    ];

    for (name, make) in devices {
        let mut dev = make();
        let cal = Calibrator::new(CalibrationConfig::for_device(cap, 42));
        let (qdtt, report) = cal.calibrate_qdtt(&mut *dev);
        println!("== {name} ==");
        println!(
            "  measured {} points, defaulted {} (early stop at qd {:?})",
            report.points_measured, report.points_defaulted, report.stopped_at_qd
        );
        println!(
            "  {} page reads in {} of virtual I/O time",
            report.total_reads, report.virtual_duration
        );
        let widest = *qdtt.band_sizes().last().unwrap();
        println!(
            "  cost(widest band): qd1 {:.1} µs -> qd32 {:.1} µs ({:.1}x)",
            qdtt.cost(widest, 1),
            qdtt.cost(widest, 32),
            qdtt.cost(widest, 1) / qdtt.cost(widest, 32)
        );
        println!(
            "  maximum beneficial queue depth: {}",
            qdtt.beneficial_queue_depth(widest, 0.05)
        );
        let path = out_dir.join(format!("{name}.qdtt.json"));
        save_qdtt(&qdtt, &path).expect("persist model");
        println!("  saved -> {}\n", path.display());
    }
    println!(
        "note: the single-spindle HDD trips the §4.6 early stop (queue depth\n\
         does not pay there), which is exactly what keeps its calibration cheap."
    );
}
