//! The paper's central phenomenon in one run: the IS/FTS selectivity
//! break-even point barely moves on HDD when parallel I/O is used, but
//! shifts dramatically on SSD (Table 2 / §3).
//!
//! ```sh
//! cargo run --release --example breakeven_shift
//! ```

use pioqo::prelude::*;

fn main() {
    for name in ["E33-HDD", "E33-SSD"] {
        let cfg = ExperimentConfig::by_name(name)
            .expect("known experiment")
            .scaled_down(8);
        let exp = Experiment::build(cfg);

        let serial_is = MethodSpec::Is {
            workers: 1,
            prefetch: 0,
        };
        let serial_fts = MethodSpec::Fts { workers: 1 };
        let pis32 = MethodSpec::Is {
            workers: 32,
            prefetch: 0,
        };
        let pfts32 = MethodSpec::Fts { workers: 32 };

        println!("== {name} ==");
        let np = break_even(&exp, serial_is, serial_fts, 1e-5, 0.5, 10);
        println!(
            "  non-parallel break-even (IS vs FTS):      {:.4}%",
            np * 100.0
        );
        let p = break_even(&exp, pis32, pfts32, 1e-5, 0.8, 10);
        println!(
            "  parallel break-even (PIS32 vs PFTS32):    {:.4}%",
            p * 100.0
        );
        println!("  shift: {:.1}x\n", p / np);
    }
    println!(
        "paper (Table 2, T33): HDD 0.02% -> 0.05% (2.5x); SSD 0.4% -> 2.1% (5.3x).\n\
         The SSD's shift is why an SSD-oblivious optimizer picks wrong plans."
    );
}
