//! Multi-session execution through the public `Db` API: interactive
//! sessions splitting the queue-depth budget, then a full closed-loop
//! workload under QDTT-aware admission control — watch the optimizer pick
//! cheaper, narrower plans as concurrency rises.
//!
//! ```sh
//! cargo run --release --example multi_session
//! ```

use pioqo::prelude::*;
use pioqo::storage::range_for_selectivity;

fn main() {
    let mut db = Db::builder()
        .storage(StorageKind::Ssd)
        .rows(400_000)
        .buffer_mb(8)
        .build();
    db.calibrate();

    // Interactive sessions: each one holds a queue-depth lease, and the
    // optimizer costs every query under it. Every additional session
    // shrinks the leases, which can change the chosen plan.
    let (lo, hi) = range_for_selectivity(0.002, u32::MAX - 1);
    let s1 = db.session();
    let (plan, label) = s1.explain_max_between(&db, lo, hi);
    println!(
        "1 session:  depth {:>2} -> {label} (est {:.0} us)",
        s1.depth(),
        plan.est_total_us
    );
    let others: Vec<_> = (0..7).map(|_| db.session()).collect();
    let s8 = db.session();
    let (plan, label) = s8.explain_max_between(&db, lo, hi);
    println!(
        "8 sessions: depth {:>2} -> {label} (est {:.0} us)",
        s8.depth(),
        plan.est_total_us
    );
    drop(s1);
    drop(others);
    drop(s8); // leases return to the budget on drop

    // The closed-loop workload: 8 sessions of range-MAX queries with
    // exponential think time, interleaved on one simulated SSD, every
    // query re-optimized under its admission lease.
    let out = db
        .run_workload(WorkloadSpec {
            sessions: 8,
            queries_per_session: 4,
            ..WorkloadSpec::default()
        })
        .expect("workload runs");
    let report = &out.report;
    println!(
        "\n8-session workload: {} queries in {:.1} ms of virtual time (fairness {:.2})",
        report.total_completed(),
        report.makespan.as_micros_f64() / 1_000.0,
        report.fairness_ratio()
    );
    println!("plan mix:");
    for (label, n) in &report.plan_counts {
        println!("  {label:<12} x{n}");
    }
    let mean_lease = out
        .admissions
        .iter()
        .map(|a| a.lease_depth as f64)
        .sum::<f64>()
        / out.admissions.len().max(1) as f64;
    let mean_active = out.admissions.iter().map(|a| a.active as f64).sum::<f64>()
        / out.admissions.len().max(1) as f64;
    println!(
        "admission: mean {:.1} concurrent queries, mean lease depth {:.1}",
        mean_active, mean_lease
    );
}
