//! Calibrate against the *real* filesystem: creates a temp file of
//! incompressible data and runs the paper's calibration (thread-pool
//! queue-depth generation, AW discipline) with wall-clock timing.
//!
//! Without `O_DIRECT` the OS page cache makes a warm file look like DRAM,
//! so this is a demonstration of the code path, not a benchmark of your
//! disk; pass `--direct` (Linux, may need a real block-backed filesystem)
//! to bypass the cache.
//!
//! ```sh
//! cargo run --release --example real_device [-- --direct]
//! ```

#[cfg(unix)]
fn main() {
    use pioqo::core::real_calibrate::calibrate_real_qdtt;
    use pioqo::core::{CalibrationConfig, Method};
    use pioqo::device::real::RealFile;
    use std::sync::Arc;

    let direct = std::env::args().any(|a| a == "--direct");
    let pages = 4096u64; // 16 MiB
    let path = std::env::temp_dir().join(format!("pioqo-real-{}.dat", std::process::id()));
    println!(
        "creating {} ({} pages of random data)...",
        path.display(),
        pages
    );
    RealFile::create(&path, pages, 4096).expect("create calibration file");
    let file = Arc::new(RealFile::open(&path, 4096, direct).expect("open calibration file"));

    let cfg = CalibrationConfig {
        band_sizes: vec![1, 64, 1024, pages],
        queue_depths: vec![1, 2, 4, 8, 16, 32],
        max_reads: 1600,
        method: Method::ActiveWait,
        repetitions: 3,
        early_stop_pct: None,
        stop_fill_factor: 1.02,
        seed: 7,
    };
    println!(
        "calibrating ({} reads/point, O_DIRECT={})...\n",
        cfg.max_reads, direct
    );
    let model = calibrate_real_qdtt(&cfg, Arc::clone(&file)).expect("calibration runs");

    println!("QDTT on this machine's filesystem (µs per 4 KiB read):");
    print!("{:>10}", "band\\qd");
    for &qd in model.queue_depths() {
        print!("{qd:>9}");
    }
    println!();
    for &b in model.band_sizes() {
        print!("{b:>10}");
        for &qd in model.queue_depths() {
            print!("{:>9.1}", model.cost(b, qd));
        }
        println!();
    }
    println!(
        "\n(cached files show flat, tiny costs — run with --direct on a real\n\
         disk to see the device's actual queue-depth behaviour.)"
    );
    std::fs::remove_file(&path).ok();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("the real-device calibration path is Unix-only");
}
