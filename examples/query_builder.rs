//! The fluent query API: predicate trees, projections and aggregates over
//! an embedded [`Db`], each query planned by the calibrated QDTT optimizer
//! and pushed down into the chosen scan operator.
//!
//! ```sh
//! cargo run --release --example query_builder
//! ```

use pioqo::prelude::*;

fn main() {
    // An SSD-backed single-table database; calibration fits the QDTT
    // model the optimizer plans with.
    let mut db = Db::builder()
        .storage(StorageKind::Ssd)
        .rows(200_000)
        .build();
    db.calibrate();

    // SELECT MAX(C1) FROM T WHERE C2 BETWEEN 0 AND 40M — the paper's
    // query, written through the builder. The predicate's sargable C2
    // window drives the optimizer's selectivity estimate.
    let narrow = db
        .query()
        .filter(Predicate::c2_between(0, 40_000_000))
        .max(Col::C1)
        .expect("query runs");
    println!(
        "narrow window : MAX(C1) = {:?} via {} ({:.2} ms virtual)",
        narrow.value,
        narrow.plan_name,
        narrow.metrics.runtime.as_secs_f64() * 1e3,
    );

    // Residual predicates ride along: the C2 window is still sargable
    // (bounds the index probe), the C1 term is evaluated per fetched row
    // inside the scan driver — no post-filtering layer.
    let residual = db
        .query()
        .filter(Predicate::And(vec![
            Predicate::c2_between(0, 2_000_000_000),
            Predicate::Cmp {
                col: Col::C1,
                op: CmpOp::Ge,
                value: 1 << 29,
            },
        ]))
        .project(vec![Col::C1])
        .max(Col::C1)
        .expect("query runs");
    println!(
        "residual C1>=2^29: MAX(C1) = {:?} via {} ({} rows matched)",
        residual.value, residual.plan_name, residual.metrics.rows_matched,
    );

    // COUNT(*) with an OR tree — not sargable, so the optimizer sees the
    // full table and (on SSD) streams it with a parallel full scan.
    let disjunct = db
        .query()
        .filter(Predicate::Or(vec![
            Predicate::c2_between(0, 10_000_000),
            Predicate::c2_between(4_000_000_000, u32::MAX),
        ]))
        .count()
        .expect("query runs");
    println!(
        "OR of two windows: COUNT(*) = {} via {}",
        disjunct.metrics.rows_matched, disjunct.plan_name,
    );

    // Wider window -> higher selectivity estimate -> at some width the
    // calibrated model flips the access path (Fig. 4's break-even).
    println!("\nplan vs window width (the optimizer's break-even):");
    for hi in [10_000_000u32, 200_000_000, 2_000_000_000, u32::MAX] {
        let (_, name) = db.explain_max_between(0, hi);
        println!("  C2 <= {hi:>10} : {name}");
    }
}
